"""Process-pool executor — the SRE across address spaces, outside the GIL.

The third back-end (after the simulated and threaded executors). Every
runtime decision — graph, queues, dispatch policy, speculation, rollback —
stays on the coordinator, exactly as on the other two back-ends; only task
*bodies* are shipped, as pickled ``(fn, inputs)`` payloads, to a pool of
worker processes. Pure-Python kernels therefore run truly in parallel:
one coordinator thread per worker blocks on its worker's pipe while the
worker computes, so the coordinator spends its time in I/O waits, not
bytecode.

This mirrors the paper's Cell back-end more closely than threads ever
could: a control processor runs the runtime, compute elements in separate
address spaces run kernels, and working sets cross the boundary explicitly
(with a per-task footprint budget in the spirit of the 32 KB local-store
cap — see :class:`~repro.platforms.localstore.LocalStore`).

Two transport refinements keep the pipe off the critical path:

* **shared-memory refs** — payloads built over a
  :class:`~repro.sre.shm.BlockStore` carry
  :class:`~repro.sre.shm.BlockRef` handles instead of block bytes; workers
  attach each segment lazily, once, and resolve refs zero-copy. The budget
  check counts the *referenced* bytes (``Task.payload_footprint``), not
  the handle bytes, and ``procs_payload_bytes_avoided`` accounts what
  stayed off the wire.
* **batching with streaming replies** — when the ready queues hold more
  work than there are idle seats, small payloads ride along in one pipe
  message (one header + payload frames), amortising syscalls and wakeups
  across kernels. The worker replies **once per payload**, not once per
  batch, and the coordinator completes each task the moment its reply
  lands — a fast batch-mate's result (often the histogram a verification
  check is waiting on) is never held hostage behind a slow member's body.
  Batching never starves parallelism: extras are claimed only while every
  idle seat still has a task left in the queues.
* **work-stealing deques** — claimed-but-unshipped work parks in a
  per-seat deque instead of being pinned to the seat that batched it. An
  idle coordinator (empty queues, empty own deque) steals half of the
  deepest victim deque, from its tail, and ships the stolen payloads down
  its *own* worker's pipe (``task_steal`` events, ``procs_tasks_stolen``).
  A straggling worker therefore delays only the payloads already in its
  pipe, never the backlog claimed on its behalf. ``steal=False`` disables
  stealing (RunConfig/CLI knob).

Three classes of task never leave the coordinator:

* **control tasks** (predict / verify / check) — tiny and latency-critical,
  they run inline, as the Cell PPE runs control code;
* **unpicklable payloads** (closures over coordinator state) — run inline
  rather than failing, so pipelines mixing shippable kernels with
  closure-based glue work unmodified;
* tasks whose payload footprint exceeds the budget — these *fail*
  (configuration error), matching the local-store discipline.

Abort flags cross the process boundary through a shared byte array: when a
RUNNING task is flagged, the coordinator raises its worker's flag; a worker
observes the flag before starting a received payload and skips execution.
Work the worker has already started cannot be recalled — the coordinator
reaps its result on completion, the paper's destroy-signal protocol
(§III-B) verbatim. A skipped batch member that was *not* itself aborted
(innocent bystander of a raised flag), or one whose shared segment
disappeared under a racing rollback (``SegmentGone``), is re-run inline on
the coordinator — the authoritative mapping there outlives the unlink.

**Physical fault tolerance.** Logical failures (mis-speculation, task
exceptions) were always reclaimed; a *physical* failure — a worker process
SIGKILLed by the OOM killer, wedged in a C extension, or silently eating a
reply — used to strand the coordinator thread in ``conn.recv()`` forever
or kill it with an uncaught ``EOFError``. The :class:`WorkerSupervisor`
treats process failure as just another speculation to recover from
(cf. distributed speculative execution): every dispatch awaits its reply
under a deadline scaled by batch size while also watching the worker's
``Process.sentinel``; a dead or wedged worker is killed, accounted
(``worker_crash`` events + ``procs_worker_crashes{cause}``), respawned
(``worker_respawn``), and the in-flight batch is re-dispatched *singly*
with bounded retries and exponential backoff (:class:`RetryPolicy`) so a
poisonous payload cannot take innocent batch-mates down twice. A task
that keeps killing workers is **quarantined** — it fails once through the
normal ``task_failed`` path (its dependence cone aborts, shared-memory
blocks it pinned are force-released with ``shm_release{reason="crash"}``)
instead of retrying forever. A worker slot whose respawn budget runs out
**degrades to coordinator-inline execution**: slower, but the run
completes. Deterministic chaos for all of this comes from
:mod:`repro.testing.faults` (``repro run --fault kill@3``).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import pickle
import time
import traceback
from collections import deque
from typing import Any

import threading

from repro.errors import (
    PlatformError,
    SchedulingError,
    SegmentGone,
    TaskStateError,
    WorkerLost,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import parse_traceparent
from repro.sre import shm
from repro.sre.executor_base import LiveExecutor
from repro.sre.policies import DispatchPolicy
from repro.sre.registry import register_executor
from repro.sre.runtime import Runtime
from repro.sre.task import PAYLOAD_PROTOCOL, Task
from repro.testing.faults import FaultInjector, FaultPlan

__all__ = ["ProcessExecutor", "WorkerSupervisor", "RetryPolicy",
           "DEFAULT_PAYLOAD_BUDGET", "DEFAULT_BATCH_MAX",
           "DEFAULT_BATCH_BYTES", "DEFAULT_DISPATCH_TIMEOUT_S",
           "DEFAULT_HARVEST_TIMEOUT_S"]

#: Default per-task payload-footprint cap (bytes): wire bytes plus bytes of
#: every shared-memory block the payload references. Far roomier than the
#: Cell's 32 KB local-store slots — pipes and mmaps don't mind — but the
#: discipline is the same: a task that drags megabytes of captured state to
#: a worker is a pipeline bug, and it should fail loudly at dispatch.
DEFAULT_PAYLOAD_BUDGET = 8 * 1024 * 1024

#: Most tasks a coordinator thread ships in one pipe message.
DEFAULT_BATCH_MAX = 8

#: Only payloads at or below this wire size are batched; bigger ones ship
#: alone so a long transfer never delays unrelated small kernels.
DEFAULT_BATCH_BYTES = 64 * 1024

#: Per-payload reply deadline (seconds). Replies stream back one per
#: payload, so each reply gets this long — the deadline is **never**
#: scaled by batch size, and a wedged worker is detected within one
#: deadline however deep its pipe. Generous against slow kernels and
#: loaded machines, tight enough that a wedged worker cannot stall a run
#: forever. Configurable per run (``RunConfig.dispatch_timeout_s``).
DEFAULT_DISPATCH_TIMEOUT_S = 60.0

#: How long the stop path waits for each worker's final metrics/events
#: harvest before declaring it lost (``worker_harvest_lost``).
DEFAULT_HARVEST_TIMEOUT_S = 2.0

#: Worker wire protocol: reply status tags and the stop sentinel. One
#: request is a pickled frame count followed by that many payload frames;
#: the worker replies **once per payload** with a ``(seq, status, payload)``
#: triple, where ``seq`` counts payloads *received* (not replied) across
#: the worker's whole incarnation — so a swallowed payload (injected drop)
#: desynchronises the stream and the supervisor detects it as a protocol
#: violation or a hang instead of silently misattributing later replies.
_OK = "ok"
_ERR = "error"
_SKIPPED = "abort-skipped"
_GONE = "segment-gone"
_METRICS = "metrics"
_STOP = b"\x00__sre_stop__"
#: Mid-lifetime harvest request: the worker ships its metrics/events
#: interval home like on ``_STOP``, then resets its local registry and
#: event log and keeps serving. The per-job accounting seam for warm
#: lanes (``WorkerSupervisor.harvest``).
_FLUSH = b"\x00__sre_flush__"


def _process_main(conn, abort_flags, wid: int, fault_plan=None,
                  incarnation: int = 0) -> None:
    """Worker-process loop: receive payload batches, observe abort flags,
    reply once per payload as each body finishes (streaming replies).

    Module-level so it imports cleanly under any multiprocessing start
    method. The worker owns no runtime state — it is a pure payload engine.
    Shared-memory segments referenced by payloads are attached lazily (the
    first ref into a segment pays the map; every later ref is a pointer),
    and detached when the stop sentinel arrives.

    Each worker keeps its own :class:`~repro.obs.metrics.MetricsRegistry`
    (payload counts, errors, abort skips, body wall time, attached
    segments) and its own :class:`~repro.obs.events.EventLog` (one
    ``worker_exec`` event per payload); on the stop sentinel it sends both
    back up the pipe as a final ``(_METRICS, {"metrics": ..., "events":
    ...})`` reply — the coordinator folds the snapshot into the run's
    registry and reconciles the events into the run's log with fresh
    coordinator seqs (cross-process aggregation over the existing wire,
    no extra channel).

    ``fault_plan`` / ``incarnation`` arm deterministic chaos (see
    :mod:`repro.testing.faults`): the injector fires *before* a batch's
    payloads run, so an injected kill/hang/drop always leaves the batch
    unacknowledged — exactly the wreckage the supervisor must clean up.

    The batch header is ``(frame_count, traceparent)`` — the coordinator
    forwards the active span context of the job it is running, and the
    worker stamps that trace id onto every event it emits until the next
    batch says otherwise (:meth:`EventLog.set_trace_context`), so merged
    ``worker_exec`` events join the job's distributed trace. A bare-int
    header (no trace) is accepted too. ``_FLUSH`` triggers a mid-lifetime
    harvest: the worker ships its interval snapshot exactly like on
    ``_STOP`` but then resets its registry/log and keeps serving — how a
    warm lane's workers account per job instead of per daemon lifetime.
    """
    injector = FaultInjector(fault_plan, wid, incarnation)
    w = str(wid)

    def _fresh_state():
        """Registry + event log + bound instruments for one harvest
        interval (worker start -> first flush, flush -> flush, ... ->
        stop)."""
        metrics = MetricsRegistry()
        events = EventLog(run_id=f"w{wid}")
        m_tasks = metrics.counter(
            "procs_worker_tasks", "payloads executed in worker processes",
            labelnames=("worker",)).labels(worker=w)
        m_errors = metrics.counter(
            "procs_worker_errors", "payloads that raised in worker processes",
            labelnames=("worker",)).labels(worker=w)
        m_skips = metrics.counter(
            "procs_worker_abort_skips",
            "payloads skipped because the destroy signal landed first",
            labelnames=("worker",)).labels(worker=w)
        m_gone = metrics.counter(
            "procs_worker_segment_gone",
            "payloads bounced because a shared segment was already reclaimed",
            labelnames=("worker",)).labels(worker=w)
        m_body_us = metrics.histogram(
            "procs_worker_body_us", "payload body wall time in worker (µs)",
            labelnames=("worker",)).labels(worker=w)
        m_attached = metrics.gauge(
            "procs_worker_shm_attached",
            "shared-memory segments a worker had attached at shutdown",
            labelnames=("worker",)).labels(worker=w)
        return (metrics, events, m_tasks, m_errors, m_skips, m_gone,
                m_body_us, m_attached)

    (metrics, events, m_tasks, m_errors, m_skips, m_gone,
     m_body_us, m_attached) = _fresh_state()
    seq = 0  # payloads *received* this incarnation; replies are tagged with it
    while True:
        try:
            head = conn.recv_bytes()
        except (EOFError, OSError):
            return
        if head in (_STOP, _FLUSH):
            m_attached.set(len(shm.attached_segments()))
            try:
                conn.send((_METRICS, {"metrics": metrics.snapshot(),
                                      "events": events.events()}))
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                if head == _STOP:
                    shm.detach_all()
                return
            if head == _STOP:
                shm.detach_all()
                return
            # Flush: clean slate for the next interval. The reply-seq
            # counter is NOT reset — it tracks the pipe stream, which
            # outlives harvest intervals.
            trace_ctx = events.trace_context
            (metrics, events, m_tasks, m_errors, m_skips, m_gone,
             m_body_us, m_attached) = _fresh_state()
            events.set_trace_context(trace_ctx)
            continue
        try:
            header = pickle.loads(head)
            if isinstance(header, tuple):
                n, traceparent = header
            else:  # bare-count header from a trace-less dispatcher
                n, traceparent = header, None
            blobs = [conn.recv_bytes() for _ in range(n)]
        except (EOFError, OSError):
            return
        events.set_trace_context(parse_traceparent(traceparent))
        base = seq
        seq += len(blobs)
        if injector.on_batch():
            # Injected drop: swallow the batch without replying, but keep
            # counting its payloads in ``seq`` — the next reply arrives
            # out of sequence (protocol violation) or never (hang), and
            # the supervisor recovers either way instead of misattributing
            # later replies to the swallowed payloads.
            continue
        for i, blob in enumerate(blobs):
            if abort_flags[wid]:
                # Destroy signal observed before launch: skip the body.
                # The coordinator re-runs any batch member that was not
                # actually aborted, so over-skipping is always safe.
                m_skips.inc()
                events.emit("worker_exec", status="abort-skipped",
                            wire_bytes=len(blob))
                status, payload = _SKIPPED, None
            else:
                t0 = time.perf_counter()
                try:
                    outputs = Task.run_payload(blob)
                except SegmentGone as exc:
                    m_gone.inc()
                    events.emit("worker_exec", status="segment-gone",
                                wire_bytes=len(blob))
                    status, payload = _GONE, str(exc)
                except BaseException:
                    m_errors.inc()
                    events.emit("worker_exec", status="error",
                                wire_bytes=len(blob))
                    status, payload = _ERR, traceback.format_exc()
                else:
                    dur_us = (time.perf_counter() - t0) * 1e6
                    m_tasks.inc()
                    m_body_us.observe(dur_us)
                    events.emit("worker_exec", status="ok", dur_us=dur_us,
                                wire_bytes=len(blob))
                    status, payload = _OK, outputs
            # Stream this payload's reply immediately — never hold a fast
            # result hostage to a slow batch-mate still waiting its turn.
            try:
                conn.send((base + i + 1, status, payload))
            except (BrokenPipeError, InterruptedError, OSError):
                return  # coordinator went away; nothing left to tell it
            except Exception as exc:
                # The output refused to pickle (Connection.send pickles
                # fully before writing, so the pipe is still clean):
                # degrade just this reply to an error.
                try:
                    conn.send((base + i + 1, _ERR, (
                        "task outputs could not cross the process "
                        f"boundary: {exc!r}")))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    return


class _WorkerCrash(RuntimeError):
    """A worker process reported a payload failure (carries its traceback)."""


class _Claimed:
    """A deque'd ``(task, blob)`` pair popped by ``_acquire_work`` —
    already serialized and accounted in flight, not yet shipped."""

    __slots__ = ("task", "blob")

    def __init__(self, task: Task, blob: bytes) -> None:
        self.task = task
        self.blob = blob


# ---------------------------------------------------------------------------
# retry / backoff / quarantine policy
# ---------------------------------------------------------------------------

class RetryPolicy:
    """Bounded-retry policy for payloads whose worker physically died.

    Pure bookkeeping, deliberately free of I/O so its invariants are
    property-testable: a key is offered at most ``max_retries`` retries
    (``record_failure`` answers ``"retry"``), after which it is
    **quarantined** — every later ``record_failure`` answers
    ``"quarantine"``, permanently; and :meth:`backoff` is monotone
    non-decreasing in the attempt number, capped at ``backoff_cap_s``.

    Thread-safe: coordinator threads for different workers may record
    failures for the same task name (a batch re-dispatched after an
    abort-and-respeculate can land anywhere).
    """

    def __init__(self, *, max_retries: int = 2, backoff_s: float = 0.05,
                 backoff_cap_s: float = 2.0) -> None:
        if max_retries < 0:
            raise SchedulingError("max_retries must be >= 0")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise SchedulingError("backoff durations must be >= 0")
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._quarantined: set[str] = set()

    def attempts(self, key: str) -> int:
        """Failures recorded against ``key`` so far."""
        with self._lock:
            return self._attempts.get(key, 0)

    def quarantined(self, key: str) -> bool:
        with self._lock:
            return key in self._quarantined

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        Exponential: ``backoff_s × 2^(attempt-1)``, capped.
        """
        if attempt < 1 or self.backoff_s == 0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_s * (2 ** (attempt - 1)))

    def record_failure(self, key: str) -> str:
        """Account one worker-death against ``key``.

        Returns ``"retry"`` while the attempt budget lasts, else
        ``"quarantine"`` (sticky: once quarantined, always quarantined).
        """
        with self._lock:
            if key in self._quarantined:
                return "quarantine"
            n = self._attempts.get(key, 0) + 1
            self._attempts[key] = n
            if n > self.max_retries:
                self._quarantined.add(key)
                return "quarantine"
            return "retry"


# ---------------------------------------------------------------------------
# the worker supervisor
# ---------------------------------------------------------------------------

class _Slot:
    """One worker seat: its current process, pipe and spawn history.

    ``sent`` / ``recvd`` track the per-payload reply stream for the
    current incarnation: payload frames shipped down the pipe vs replies
    received back. A reply whose sequence number is not ``recvd + 1`` (or
    exceeds ``sent``) is a protocol violation — the worker swallowed or
    duplicated a payload — and the seat is recovered like a crash.
    """

    __slots__ = ("wid", "proc", "conn", "incarnation", "respawns", "degraded",
                 "sent", "recvd")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.conn: Any = None
        self.incarnation = -1  # first _spawn makes it 0
        self.respawns = 0
        self.degraded = False
        self.sent = 0
        self.recvd = 0


class WorkerSupervisor:
    """Owns the worker processes: spawn, watch, harvest, kill, respawn.

    Every pipe interaction the executor used to do blindly goes through
    here so physical failure has exactly one detection point:

    * :meth:`send` ships payload frames down the seat's pipe without
      waiting, and :meth:`recv_reply` awaits exactly **one** per-payload
      reply under a fresh per-payload deadline, watching the worker's
      ``Process.sentinel`` the whole time — a dead worker raises
      :class:`~repro.errors.WorkerLost` with cause ``"crash"``
      immediately (no timeout wait), a silent one raises with cause
      ``"hang"`` when the deadline passes, and an out-of-sequence reply
      raises with cause ``"protocol"``. :meth:`dispatch` composes the
      two as an incremental reader (a generator), yielding each reply
      the moment it lands instead of holding a whole batch hostage.
    * :meth:`note_lost` accounts a failure (``worker_crash`` event,
      ``procs_worker_crashes{cause}``) and guarantees the process is dead.
    * :meth:`respawn` brings up a fresh process on the same seat —
      bounded by ``max_respawns``; past the budget the seat **degrades**
      (``worker_degraded`` event, ``procs_workers_degraded`` gauge) and
      :meth:`alive` turns False, telling the executor to run that seat's
      work inline on the coordinator instead.
    * :meth:`stop` runs the shutdown harvest: each live worker gets the
      stop sentinel and ``harvest_timeout_s`` to send its final
      metrics/events snapshot home; a worker that cannot (dead seat, or
      the poll expires on a loaded machine) is *accounted* —
      ``worker_harvest_lost`` event + counter — never silently dropped.

    This interface — ``send``/``recv_reply``/``note_lost``/``respawn``/
    ``abort_flags``/``alive``/``rebind``/``start``/``stop``/``harvest``
    plus the ``n_workers``/``fault_plan``/``max_respawns``/
    ``harvest_timeout_s`` attributes — is the **supervisor seam**:
    :class:`ProcessExecutor` funnels every worker interaction through it
    and accepts any duck-typed implementation via ``supervisor=``. The
    distributed back-end's :class:`~repro.sre.executor_dist.RemotePool`
    implements the same seam over TCP, where "the process is dead"
    becomes "the seat connection is closed" and respawn becomes
    reconnect-with-bumped-incarnation.
    """

    def __init__(
        self,
        ctx,
        workers: int,
        *,
        runtime: Runtime,
        fault_plan: FaultPlan | None = None,
        max_respawns: int = 3,
        harvest_timeout_s: float = DEFAULT_HARVEST_TIMEOUT_S,
    ) -> None:
        if max_respawns < 0:
            raise SchedulingError("max_respawns must be >= 0")
        if harvest_timeout_s <= 0:
            raise SchedulingError("harvest_timeout_s must be positive")
        self._ctx = ctx
        self.n_workers = workers
        self.fault_plan = fault_plan
        self.max_respawns = max_respawns
        self.harvest_timeout_s = harvest_timeout_s
        self.abort_flags = ctx.Array("b", workers, lock=False)
        self._slots = [_Slot(wid) for wid in range(workers)]
        self._bind_runtime(runtime)

    def _bind_runtime(self, runtime: Runtime) -> None:
        self.runtime = runtime
        m = runtime.metrics
        self._m_crashes = m.counter(
            "procs_worker_crashes",
            "worker processes that died or stopped replying mid-run",
            labelnames=("cause",))
        self._m_respawns = m.counter(
            "procs_worker_respawns", "replacement worker processes spawned")
        self._m_degraded = m.gauge(
            "procs_workers_degraded",
            "worker seats that exhausted their respawn budget and fell "
            "back to coordinator-inline execution")
        self._m_harvest_lost = m.counter(
            "procs_worker_harvest_lost",
            "workers whose final metrics/events snapshot could not be "
            "harvested at shutdown",
            labelnames=("reason",))

    def rebind(self, runtime: Runtime) -> None:
        """Re-point a warm supervisor at a fresh per-job runtime.

        A long-lived supervisor (see ``ProcessExecutor(supervisor=...)``)
        outlives any single run: each new job brings its own
        :class:`~repro.sre.runtime.Runtime` with a fresh metrics registry
        and event log, so crash/respawn accounting must land in the job
        that witnessed it. Also clears any abort flags a previous job
        left raised so the new job's first batch is not skipped.
        """
        self._bind_runtime(runtime)
        for wid in range(self.n_workers):
            self.abort_flags[wid] = 0

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        slot.incarnation += 1
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_process_main,
            args=(child, self.abort_flags, slot.wid, self.fault_plan,
                  slot.incarnation),
            name=f"sre-proc-{slot.wid}.{slot.incarnation}",
            daemon=True,
        )
        proc.start()
        child.close()
        slot.proc = proc
        slot.conn = parent
        slot.sent = 0   # the reply stream restarts with each incarnation
        slot.recvd = 0

    def start(self) -> None:
        for slot in self._slots:
            self._spawn(slot)

    def alive(self, wid: int) -> bool:
        """True while seat ``wid`` has (or may get) a worker process."""
        return not self._slots[wid].degraded

    def pids(self) -> list[int | None]:
        """Current worker PIDs by seat (None for degraded seats)."""
        return [s.proc.pid if s.proc is not None and not s.degraded else None
                for s in self._slots]

    def process(self, wid: int):
        return self._slots[wid].proc

    # -- dispatch ------------------------------------------------------
    def send(self, wid: int, frames: list[bytes]) -> None:
        """Ship one pipe message of payload frames to seat ``wid``.

        Returns as soon as the frames are written — replies stream back
        one per payload through :meth:`recv_reply`. Raises
        :class:`~repro.errors.WorkerLost` on a degraded seat
        (``"degraded"``) or a broken pipe (``"crash"``).
        """
        slot = self._slots[wid]
        if slot.degraded or slot.proc is None:
            raise WorkerLost(wid, "degraded")
        # The batch header carries the active span context of whatever
        # job this supervisor is currently bound to, so worker-side
        # events join its distributed trace (None when untraced).
        ctx = self.runtime.events.trace_context
        header = (len(frames),
                  ctx.to_traceparent() if ctx is not None else None)
        try:
            slot.conn.send_bytes(pickle.dumps(header,
                                              protocol=PAYLOAD_PROTOCOL))
            for frame in frames:
                slot.conn.send_bytes(frame)
        except (BrokenPipeError, OSError):
            raise WorkerLost(wid, "crash",
                             exitcode=slot.proc.exitcode) from None
        slot.sent += len(frames)

    def recv_reply(self, wid: int, timeout_s: float) -> tuple[str, Any]:
        """Await exactly one per-payload ``(status, payload)`` reply.

        The deadline is **per payload** — never scaled by batch size —
        so a wedged worker is detected within one ``timeout_s`` whatever
        the depth of its pipe. Raises :class:`~repro.errors.WorkerLost`
        when the worker dies (``"crash"``), exceeds the deadline
        (``"hang"``) or replies out of sequence (``"protocol"`` —
        treated like a hang by recovery).
        """
        slot = self._slots[wid]
        if slot.degraded or slot.proc is None:
            raise WorkerLost(wid, "degraded")
        conn, proc = slot.conn, slot.proc
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerLost(wid, "hang")
            ready = multiprocessing.connection.wait(
                [conn, proc.sentinel], timeout=remaining)
            if conn in ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    raise WorkerLost(wid, "crash",
                                     exitcode=proc.exitcode) from None
                if (isinstance(reply, tuple) and len(reply) == 2
                        and reply[0] == _METRICS):
                    # A flush-harvest snapshot that lost the race with its
                    # deadline (see harvest()): fold it in late instead of
                    # poisoning the reply stream — it carries no task
                    # payload and does not advance the reply seq.
                    if reply[1]:
                        self.runtime.metrics.merge_snapshot(
                            reply[1]["metrics"])
                        self.runtime.events.merge_worker(
                            wid, reply[1]["events"])
                    continue
                if not (isinstance(reply, tuple) and len(reply) == 3):
                    raise WorkerLost(wid, "protocol")
                seq, status, payload = reply
                if seq != slot.recvd + 1 or seq > slot.sent:
                    # The worker swallowed or duplicated a payload (e.g.
                    # an injected drop): the stream is desynchronised and
                    # no later reply can be trusted.
                    raise WorkerLost(wid, "protocol")
                slot.recvd = seq
                return status, payload
            if proc.sentinel in ready:
                # Dead — but a reply may have raced the death into the
                # pipe; drain it before declaring the dispatch lost.
                if conn.poll(0):
                    continue
                raise WorkerLost(wid, "crash", exitcode=proc.exitcode)

    def dispatch(self, wid: int, frames: list[bytes], timeout_s: float):
        """Ship one batch and yield its replies as each one lands.

        A generator: ``send`` happens immediately, then one
        :meth:`recv_reply` per frame is yielded under a fresh per-payload
        deadline. Consuming it incrementally is the whole point — the
        caller completes each task the moment its reply arrives instead
        of waiting for the slowest batch member.
        """
        self.send(wid, frames)
        for _ in frames:
            yield self.recv_reply(wid, timeout_s)

    # -- failure handling ----------------------------------------------
    def note_lost(self, wid: int, lost: WorkerLost,
                  inflight: list[str]) -> int:
        """Account a worker failure; guarantees the process is dead.

        Returns the ``worker_crash`` event seq so the caller can scope the
        whole recovery cascade (respawn, retries, quarantines, releases)
        under it as the causal root.
        """
        slot = self._slots[wid]
        proc = slot.proc
        exitcode = lost.exitcode
        if proc is not None:
            if proc.is_alive():  # hang/protocol: put it out of its misery
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - terminate ignored
                    proc.kill()
                    proc.join(timeout=2.0)
            exitcode = proc.exitcode if exitcode is None else exitcode
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            slot.conn = None
        self._m_crashes.labels(cause=lost.cause).inc()
        # NB: the loss cause travels as ``reason`` — ``cause=`` is the
        # event log's causal-edge parameter, and a follow-on crash must
        # inherit the ambient scope (the prior crash) there.
        return self.runtime.events.emit(
            "worker_crash", worker=wid, reason=lost.cause, exitcode=exitcode,
            incarnation=max(slot.incarnation, 0),
            inflight=len(inflight), tasks=inflight[:8] or None)

    def respawn(self, wid: int) -> bool:
        """Bring a fresh process up on seat ``wid``.

        Returns False — and degrades the seat to coordinator-inline
        execution — when the respawn budget is exhausted or the spawn
        itself fails. Emits ``worker_respawn`` / ``worker_degraded``
        under whatever cause scope the caller holds (the crash event).
        """
        slot = self._slots[wid]
        if slot.degraded:
            return False
        if slot.respawns >= self.max_respawns:
            self._degrade(slot, "respawn budget exhausted")
            return False
        slot.respawns += 1
        try:
            self._spawn(slot)
        except OSError as exc:  # pragma: no cover - fork failure
            self._degrade(slot, f"spawn failed: {exc}")
            return False
        self._m_respawns.inc()
        self.runtime.events.emit("worker_respawn", worker=wid,
                                 incarnation=slot.incarnation,
                                 respawns=slot.respawns)
        return True

    def _degrade(self, slot: _Slot, reason: str) -> None:
        slot.degraded = True
        slot.proc = None
        self._m_degraded.inc()
        self.runtime.events.emit("worker_degraded", worker=slot.wid,
                                 reason=reason, respawns=slot.respawns)

    # -- harvests ------------------------------------------------------
    def harvest(self) -> None:
        """Mid-lifetime harvest: pull each live worker's metrics/events
        interval home *now*, without stopping anything.

        The per-job accounting seam for warm lanes: a borrowed
        supervisor's :meth:`ProcessExecutor._stop_backend` calls this
        once the coordinator threads have joined (pipes quiet), so
        worker-side counters and ``worker_exec`` events land in the
        runtime of the job that produced them instead of waiting for
        daemon shutdown — and served jobs report their workers' trace
        just like one-shot runs do. Each worker gets the ``_FLUSH``
        sentinel and ``harvest_timeout_s`` to reply; one that cannot is
        accounted (``worker_harvest_lost{reason="flush-timeout"}``) and
        its interval rides along with the next successful harvest
        (:meth:`recv_reply` folds a late snapshot in instead of
        treating it as a protocol violation).
        """
        flushed: list[_Slot] = []
        for slot in self._slots:
            if slot.conn is None or slot.degraded:
                continue  # degraded/dead seats have no interval to ship
            try:
                slot.conn.send_bytes(_FLUSH)
                flushed.append(slot)
            except (BrokenPipeError, OSError):
                self._harvest_lost(slot.wid, "dead")
        for slot in flushed:
            try:
                if slot.conn.poll(self.harvest_timeout_s):
                    status, payload = slot.conn.recv()
                    if status == _METRICS and payload:
                        self.runtime.metrics.merge_snapshot(
                            payload["metrics"])
                        self.runtime.events.merge_worker(
                            slot.wid, payload["events"])
                    else:  # pragma: no cover - protocol noise
                        self._harvest_lost(slot.wid, "protocol")
                else:
                    self._harvest_lost(slot.wid, "flush-timeout")
            except (EOFError, OSError):
                self._harvest_lost(slot.wid, "dead")

    # -- shutdown harvest ----------------------------------------------
    def _harvest_lost(self, wid: int, reason: str) -> None:
        self._m_harvest_lost.labels(reason=reason).inc()
        self.runtime.events.emit("worker_harvest_lost", worker=wid,
                                 reason=reason,
                                 timeout_s=self.harvest_timeout_s)

    def stop(self) -> None:
        """Stop workers, harvesting each one's metrics and events first.

        By the time this runs the coordinator threads have joined, so the
        pipes are quiet: the only traffic left is our stop sentinel and
        the worker's final ``(_METRICS, {"metrics": ..., "events": ...})``
        reply — the snapshot is folded into ``runtime.metrics`` and the
        worker's event batch is reconciled into ``runtime.events`` with
        fresh coordinator seqs (cross-process aggregation). A worker that
        cannot deliver it — a degraded seat, a death racing shutdown, or
        the configurable ``harvest_timeout_s`` poll expiring on a loaded
        machine — is accounted with ``worker_harvest_lost{reason}``
        instead of being dropped silently.
        """
        live = [s for s in self._slots if s.conn is not None]
        for slot in self._slots:
            if slot.conn is None:
                # A degraded seat has no pipe *by design* — it was never
                # lost at shutdown, and conflating it with a harvest death
                # would trip the crash detectors twice for one failure.
                self._harvest_lost(
                    slot.wid, "degraded" if slot.degraded else "dead")
                continue
            try:
                slot.conn.send_bytes(_STOP)
            except (BrokenPipeError, OSError):
                pass  # accounted below: the recv side cannot succeed either
        for slot in live:
            try:
                if slot.conn.poll(self.harvest_timeout_s):
                    status, payload = slot.conn.recv()
                    if status == _METRICS and payload:
                        self.runtime.metrics.merge_snapshot(
                            payload["metrics"])
                        self.runtime.events.merge_worker(
                            slot.wid, payload["events"])
                    else:  # pragma: no cover - protocol noise at shutdown
                        self._harvest_lost(slot.wid, "protocol")
                else:
                    self._harvest_lost(slot.wid, "timeout")
            except (EOFError, OSError):
                self._harvest_lost(slot.wid, "dead")
        for slot in live:
            proc = slot.proc
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for slot in live:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            slot.conn = None
            slot.proc = None


class ProcessExecutor(LiveExecutor):
    """Runs a :class:`~repro.sre.runtime.Runtime` on a supervised process
    pool.

    Args:
        runtime: the runtime to drive.
        policy: dispatch policy (same vocabulary as every executor).
        workers: worker processes (and paired coordinator threads).
        payload_budget: per-task payload-footprint cap in bytes (wire
            bytes + referenced shared-memory bytes).
        batch_max: most tasks shipped in one pipe message (1 disables
            batching).
        batch_bytes: only payloads at or below this wire size are batched.
        steal: allow idle seats to steal claimed-but-unshipped work from
            a straggling seat's deque (half the deque, from its tail).
            Disable to pin every claimed task to the seat that batched it
            (useful for A/B-ing straggler behaviour).
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, inherits imports) where available.
        dispatch_timeout_s: per-payload reply deadline. Replies stream
            back one per payload, so each gets this long — the deadline
            is never scaled by batch size.
        max_task_retries: worker deaths one task may cause/witness before
            it is quarantined (fails through the ``task_failed`` path).
        retry_backoff_s: base of the exponential re-dispatch backoff.
        max_worker_respawns: replacement processes one seat may consume
            before it degrades to coordinator-inline execution.
        harvest_timeout_s: shutdown grace per worker for the final
            metrics/events harvest.
        fault_plan: deterministic chaos plan (or its spec string) threaded
            into the workers — see :mod:`repro.testing.faults`.
        store: the run's :class:`~repro.sre.shm.BlockStore`, when the shm
            transport is active — quarantined tasks force-release the
            blocks they pinned (``shm_release{reason="crash"}``) so a
            crashed payload cannot leak segments.
        supervisor: an externally-owned, already-*started*
            :class:`WorkerSupervisor` to run on instead of spawning a
            fresh pool. The executor rebinds it to this runtime on start
            (:meth:`WorkerSupervisor.rebind`) and leaves it **running**
            on stop — the caller owns its lifecycle (``start``/``stop``),
            which is how ``repro serve`` keeps worker processes warm
            across jobs. ``workers`` must match the supervisor's seat
            count, and ``fault_plan``/``max_worker_respawns``/
            ``harvest_timeout_s`` are the supervisor's own (per-lane)
            settings, not per-job ones.
    """

    def __init__(
        self,
        runtime: Runtime,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int = 4,
        payload_budget: int = DEFAULT_PAYLOAD_BUDGET,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        steal: bool = True,
        start_method: str | None = None,
        dispatch_timeout_s: float = DEFAULT_DISPATCH_TIMEOUT_S,
        max_task_retries: int = 2,
        retry_backoff_s: float = 0.05,
        max_worker_respawns: int = 3,
        harvest_timeout_s: float = DEFAULT_HARVEST_TIMEOUT_S,
        fault_plan: FaultPlan | str | None = None,
        store: "shm.BlockStore | None" = None,
        supervisor: WorkerSupervisor | None = None,
    ) -> None:
        super().__init__(runtime, policy=policy, workers=workers)
        if payload_budget < 1:
            raise SchedulingError("payload_budget must be positive")
        if batch_max < 1:
            raise SchedulingError("batch_max must be >= 1")
        if dispatch_timeout_s <= 0:
            raise SchedulingError("dispatch_timeout_s must be positive")
        self.payload_budget = payload_budget
        self.batch_max = batch_max
        self.batch_bytes = batch_bytes
        self.steal = steal
        self.dispatch_timeout_s = dispatch_timeout_s
        if start_method is not None:
            self._ctx = multiprocessing.get_context(start_method)
        else:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._ctx = multiprocessing.get_context()
        if supervisor is not None:
            if supervisor.n_workers != workers:
                raise SchedulingError(
                    f"external supervisor has {supervisor.n_workers} seats, "
                    f"executor wants workers={workers}")
            self.supervisor = supervisor
            self._owns_supervisor = False
        else:
            self.supervisor = WorkerSupervisor(
                self._ctx, workers, runtime=runtime,
                fault_plan=FaultPlan.parse(fault_plan),
                max_respawns=max_worker_respawns,
                harvest_timeout_s=harvest_timeout_s)
            self._owns_supervisor = True
        self.retry_policy = RetryPolicy(max_retries=max_task_retries,
                                        backoff_s=retry_backoff_s)
        self._store = store
        #: all tasks currently in a worker's pipe, by seat. Only *shipped*
        #: payloads live here (the abort-flag relay targets the worker's
        #: address space); claimed-but-unshipped work lives in _deques.
        self._current: list[list[Task]] = [[] for _ in range(workers)]
        #: per-seat deques of claimed-but-unshipped (task, blob) pairs.
        #: Appended only by the owning seat; idle seats steal from the
        #: tail under the lock.
        self._deques: list[deque[tuple[Task, bytes]]] = [
            deque() for _ in range(workers)]
        #: seats currently inside a dispatch cycle (lock-protected); the
        #: batching guard computes idleness from this, not from the
        #: in-flight *task* count.
        self._busy: list[bool] = [False] * workers
        #: each busy seat's current dispatch_stream event seq — the causal
        #: parent for task_steal events against that seat.
        self._stream_seq: list[int | None] = [None] * workers
        #: Introspection counters (coordinator-lock protected). Mirrored as
        #: registry metrics (procs_tasks_shipped / _inline / payload_bytes)
        #: so exporters see them without touching executor internals.
        self.tasks_shipped = 0
        self.tasks_inline = 0
        self.payload_bytes = 0
        self.payload_bytes_avoided = 0
        self.batches = 0
        m = runtime.metrics
        self._m_shipped = m.counter(
            "procs_tasks_shipped", "task payloads shipped to worker processes")
        self._m_inline = m.counter(
            "procs_tasks_inline",
            "tasks run inline on the coordinator (control/unpicklable)")
        self._m_payload_bytes = m.counter(
            "procs_payload_bytes", "serialized payload bytes sent to workers")
        self._m_bytes_avoided = m.counter(
            "procs_payload_bytes_avoided",
            "bytes that stayed in shared memory instead of crossing the pipe")
        self._m_batches = m.counter(
            "procs_batches", "pipe messages carrying more than one payload")
        self._m_batched = m.counter(
            "procs_batched_tasks", "payloads that rode along in a batch")
        self._m_reruns = m.counter(
            "procs_inline_reruns",
            "worker-skipped payloads re-run inline on the coordinator")
        self._m_retries = m.counter(
            "procs_task_retries",
            "payload re-dispatches after a worker died mid-batch")
        self._m_quarantined = m.counter(
            "procs_tasks_quarantined",
            "tasks failed permanently after repeatedly losing their worker")
        self._m_stolen = m.counter(
            "procs_tasks_stolen",
            "claimed payloads stolen from a straggling seat's deque by an "
            "idle seat")
        self._m_stream_depth = m.histogram(
            "procs_reply_stream_depth",
            "payloads still unanswered in a seat's pipe when one streamed "
            "reply landed")
        #: Budget-pressure pair for the anomaly detectors: configured cap
        #: vs the largest footprint actually shipped.
        m.gauge("procs_payload_budget_bytes",
                "configured per-task payload-footprint cap").set(payload_budget)
        self._m_max_footprint = m.gauge(
            "procs_payload_max_footprint_bytes",
            "largest payload footprint (wire + referenced shm bytes) seen")
        self._max_footprint = 0
        self._footprint_lock = threading.Lock()
        runtime.add_abort_flag_listener(self._on_abort_flagged)

    # ------------------------------------------------------------------
    # substrate lifecycle
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        # The shared-memory resource tracker must exist *before* workers
        # fork: a worker that attaches a segment registers it with its
        # inherited tracker. If the tracker only starts after the fork,
        # each worker spawns a private one, and a private tracker unlinks
        # every registered segment when its worker exits — yanking live
        # segments out from under the coordinator.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        if self._owns_supervisor:
            self.supervisor.start()
        else:
            # Warm pool: the processes are already up — just re-point
            # their accounting at this job's runtime and clear stale
            # abort flags from the previous job.
            self.supervisor.rebind(self.runtime)

    def _stop_backend(self) -> None:
        if self._owns_supervisor:
            self.supervisor.stop()
        else:
            # A borrowed supervisor keeps running — its owner (e.g. the
            # serve daemon's warm lane) stops it at daemon shutdown —
            # but this job's worker-side metrics/events come home *now*:
            # the coordinator threads have joined, the pipes are quiet,
            # and the flush harvest folds each worker's interval into
            # this job's runtime before the lane is rebound home.
            self.supervisor.harvest()

    # ------------------------------------------------------------------
    # abort-flag relay (coordinator -> worker address space)
    # ------------------------------------------------------------------
    @property
    def _abort_flags(self):
        return self.supervisor.abort_flags

    def _on_abort_flagged(self, task: Task) -> None:
        # Runs under the executor lock (all runtime mutation does), so
        # _current is consistent; the flag write itself is a raw byte store
        # the worker polls without any lock.
        for wid, current in enumerate(self._current):
            if task in current:
                self._abort_flags[wid] = 1

    def _note_dispatch(self, wid: int, task: Task) -> None:
        current = self._current[wid]
        current.append(task)
        if not any(t.abort_requested for t in current):
            # Reset only when no in-flight batch member is flagged — a
            # destroy signal raised for an earlier member must survive
            # later members joining the batch.
            self._abort_flags[wid] = 0

    def _note_complete(self, wid: int, task: Task) -> None:
        current = self._current[wid]
        try:
            current.remove(task)
        except ValueError:  # pragma: no cover - defensive
            pass
        if not any(t.abort_requested for t in current):
            self._abort_flags[wid] = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _serialize_or_none(self, task: Task) -> bytes | None:
        if task.control:
            return None
        try:
            return task.serialize_payload()
        except TaskStateError:
            return None  # closure-captured payload: coordinator runs it

    def _check_budget(self, task: Task, blob: bytes) -> None:
        footprint = len(blob) + task.referenced_bytes()
        with self._footprint_lock:
            if footprint > self._max_footprint:
                self._max_footprint = footprint
                self._m_max_footprint.set(footprint)
        if footprint > self.payload_budget:
            raise PlatformError(
                f"task {task.name!r}: payload footprint {footprint} B "
                f"({len(blob)} B wire + referenced shared blocks) exceeds "
                f"the process back-end budget {self.payload_budget} B "
                "(cf. the Cell local-store per-task cap)"
            )

    def _run_inline(self, task: Task) -> dict[str, Any]:
        with self._cond:
            self.tasks_inline += 1
        self._m_inline.inc()
        return task.run()

    def _idle_seats(self) -> int:
        """Seats not currently inside a dispatch cycle. Lock held.

        This is the batching guard's notion of "idle": a *seat* with no
        work, not ``n_workers - inflight`` — that subtraction compares
        in-flight *tasks* (a batch is many) against worker *seats*, so
        one in-flight batch of 4 on a 2-seat pool yields -2 "idle seats"
        and the guard over-batches forever after.
        """
        return sum(1 for busy in self._busy if not busy)

    def _take_extras(
        self, wid: int
    ) -> tuple[list[tuple[Task, bytes]], list[Task], list[tuple[Task, PlatformError]]]:
        """Claim extra ready tasks into this seat's dispatch stream.

        Called under the lock. Extras are claimed only while the ready
        queues hold more tasks than there are idle *seats* — batching
        amortises pipe traffic without ever serialising work an idle
        seat could overlap. Shippable claims are accounted in flight
        (``queued=True`` — no ``_note_dispatch`` yet) and parked in the
        seat's deque by the caller, where an idle seat may steal them;
        control/unpicklable extras are returned for prompt inline
        execution; budget violators are returned as failures.
        """
        shippable: list[tuple[Task, bytes]] = []
        inline: list[Task] = []
        failed: list[tuple[Task, PlatformError]] = []
        limit = 2 * self.batch_max - 1  # one pipe window + one deque refill
        while len(shippable) < limit:
            nat = self.runtime.natural_queue
            spec = self.runtime.speculative_queue
            if len(nat) + len(spec) <= self._idle_seats():
                break
            extra = self.policy.select(nat, spec)
            if extra is None:
                break
            if extra.abort_requested or extra.control:
                self._begin_dispatch(wid, extra)
                inline.append(extra)
                continue
            self._begin_dispatch(wid, extra, queued=True)
            blob = self._serialize_or_none(extra)
            if blob is None or len(blob) > self.batch_bytes:
                # Unpicklable, or too big to ride along: run it inline
                # rather than delaying the stream (already accounted).
                self._note_dispatch(wid, extra)
                inline.append(extra)
                continue
            try:
                self._check_budget(extra, blob)
            except PlatformError as exc:
                self._note_dispatch(wid, extra)
                failed.append((extra, exc))
                continue
            shippable.append((extra, blob))
        return shippable, inline, failed

    def _finish_inline_extra(self, wid: int, extra: Task) -> None:
        failure: BaseException | None = None
        outputs: dict[str, Any] = {}
        t0 = self._clock()
        if not extra.abort_requested:
            with self._cond:
                self.tasks_inline += 1
            self._m_inline.inc()
            try:
                outputs = extra.run()
            except Exception as exc:
                failure = exc
        self._finish_dispatch(wid, extra, outputs, failure,
                              wall_us=self._clock() - t0)

    def _rerun_or_reap(self, task: Task) -> tuple[dict[str, Any], BaseException | None]:
        """Resolve a ``_SKIPPED``/``_GONE`` reply for one batch member.

        An actually-aborted task is reaped (empty outputs + its abort
        flag); an innocent bystander is re-run inline — the coordinator's
        segment mappings outlive any unlink, so ``SegmentGone`` cannot
        recur here.
        """
        if task.abort_requested:
            return {}, None
        self._m_reruns.inc()
        try:
            return task.run(), None
        except Exception as exc:
            return {}, exc

    # ------------------------------------------------------------------
    # remote dispatch + crash recovery
    # ------------------------------------------------------------------
    def _account_shipped(self, pairs: list[tuple[Task, bytes]]) -> None:
        """Book wire accounting for one sent pipe message.

        Accounting happens at *send* time: a re-dispatch after a crash
        puts real bytes on the wire again and is counted again — the
        counters measure pipe traffic, not unique payloads.
        """
        wire = sum(len(b) for _t, b in pairs)
        avoided = sum(t.referenced_bytes() for t, _b in pairs)
        with self._cond:
            self.tasks_shipped += len(pairs)
            self.payload_bytes += wire
            self.payload_bytes_avoided += avoided
            if len(pairs) > 1:
                self.batches += 1
        self._m_shipped.inc(len(pairs))
        self._m_payload_bytes.inc(wire)
        if avoided:
            self._m_bytes_avoided.inc(avoided)
        if len(pairs) > 1:
            self._m_batches.inc()
            self._m_batched.inc(len(pairs) - 1)

    def _ship_one(self, wid: int, task: Task, blob: bytes
                  ) -> tuple[str, Any]:
        """One single-payload round trip (the crash re-dispatch path)."""
        self.supervisor.send(wid, [blob])
        self._account_shipped([(task, blob)])
        return self.supervisor.recv_reply(wid, self.dispatch_timeout_s)

    def _quarantine(self, task: Task) -> tuple[str, Any]:
        """Give up on a payload that keeps killing workers.

        The task fails once through the normal ``task_failed`` path (the
        caller turns this reply into a failure), and any shared-memory
        blocks its payload pinned are force-released so a poisonous
        payload cannot leak segments — later releases of the same blocks
        by the version machinery are tolerated no-ops.
        """
        self._m_quarantined.inc()
        self.runtime.events.emit(
            "task_quarantine", task=task.name,
            version=task.tags.get("spec_version"),
            attempts=self.retry_policy.attempts(task.name))
        if self._store is not None:
            refs = list(shm.iter_refs((task.fn, task.inputs)))
            if refs:
                self._store.release_crashed(refs)
        return (_ERR, (
            f"task {task.name!r} quarantined: its payload lost its worker "
            f"{self.retry_policy.attempts(task.name)} time(s) "
            f"(max_task_retries={self.retry_policy.max_retries})"))

    def _handle_worker_lost(self, wid: int, lost: WorkerLost,
                            tasks: list[Task]) -> int:
        """Account a dead/hung worker and recover the seat.

        Emits the ``worker_crash`` root event, then — under its cause
        scope, so the flight recorder can walk the whole cascade —
        respawns the worker (or degrades the seat) and charges one
        failure to every in-flight payload, quarantining the ones whose
        retry budget ran out. Returns the crash event's seq.
        """
        crash_seq = self.supervisor.note_lost(
            wid, lost, inflight=[t.name for t in tasks])
        with self.runtime.events.cause(crash_seq):
            self.supervisor.respawn(wid)
            for task in tasks:
                self.retry_policy.record_failure(task.name)
        return crash_seq

    def _reply_inline(self, task: Task) -> tuple[str, Any]:
        """Run a payload on the coordinator and wrap it as a wire reply
        (degraded-seat execution)."""
        try:
            return (_OK, self._run_inline(task))
        except Exception:
            return (_ERR, traceback.format_exc())

    def _redispatch(self, wid: int, task: Task, blob: bytes
                    ) -> tuple[str, Any]:
        """Retry one payload after its worker died, until it lands,
        quarantines, or the seat degrades to inline execution."""
        while True:
            if task.abort_requested:
                return (_SKIPPED, None)
            if self.retry_policy.quarantined(task.name):
                return self._quarantine(task)
            if not self.supervisor.alive(wid):
                # Out of workers on this seat: the coordinator is the
                # execution substrate of last resort.
                return self._reply_inline(task)
            attempt = self.retry_policy.attempts(task.name)
            delay = self.retry_policy.backoff(attempt)
            if delay:
                time.sleep(delay)
            self._m_retries.inc()
            self.runtime.events.emit(
                "task_retry", task=task.name,
                version=task.tags.get("spec_version"),
                worker=wid, attempt=attempt, backoff_s=delay or None)
            try:
                return self._ship_one(wid, task, blob)
            except WorkerLost as lost:
                self._handle_worker_lost(wid, lost, [task])

    def _resolve_reply(self, wid: int, task: Task, status: str, payload: Any,
                       *, wall_us: float | None = None) -> None:
        """Turn one wire reply into a task completion — the per-payload
        analogue of the old whole-batch resolution, stamped with the
        task's *own* wall time (send → its reply), not the batch's."""
        task.drop_payload_cache()
        outputs: dict[str, Any] = {}
        failure: BaseException | None = None
        if status == _OK:
            outputs = payload
        elif status == _ERR:
            failure = _WorkerCrash(payload)
        else:  # _SKIPPED / _GONE
            outputs, failure = self._rerun_or_reap(task)
        self._finish_dispatch(wid, task, outputs, failure, wall_us=wall_us)

    def _recover_stream(self, wid: int, lost: WorkerLost,
                        fifo: deque[tuple[Task, bytes, float]]) -> None:
        """Recover every payload the lost worker still owed a reply for.

        Accounts the crash (the ``worker_crash`` causal root), respawns
        or degrades the seat, then re-dispatches the pending window
        **singly** so a poisonous payload cannot take innocent pipe-mates
        down a second time. Each pending task resolves to a normal
        completion — possibly a quarantine failure — whatever happened
        underneath.
        """
        pending = list(fifo)
        fifo.clear()
        crash_seq = self._handle_worker_lost(
            wid, lost, [t for t, _b, _ts in pending])
        with self.runtime.events.cause(crash_seq):
            for task, blob, _t_sent in pending:
                t0 = self._clock()
                status, payload = self._redispatch(wid, task, blob)
                self._resolve_reply(wid, task, status, payload,
                                    wall_us=self._clock() - t0)

    # ------------------------------------------------------------------
    # work acquisition: own deque -> ready queues -> steal
    # ------------------------------------------------------------------
    def _acquire_work(self, wid: int) -> Any:
        """Take work for seat ``wid``: its own deque first, then the
        ready queues, then — both empty — steal from a straggling seat.

        Called under the lock. Queue pops are accounted ``queued=True``:
        the task counts as in flight immediately (``wait_idle`` must not
        drain under it) but ``_note_dispatch`` — the abort-flag relay
        into the worker's address space — only happens when the payload
        actually ships, possibly from a different seat after a steal.
        """
        dq = self._deques[wid]
        if dq:
            self._busy[wid] = True
            return _Claimed(*dq.popleft())
        task = self.policy.select(
            self.runtime.natural_queue, self.runtime.speculative_queue)
        if task is not None:
            self._begin_dispatch(wid, task, queued=True)
            self._busy[wid] = True
            return task
        if self.steal and self._steal_into(wid):
            self._busy[wid] = True
            return _Claimed(*dq.popleft())
        return None

    def _steal_into(self, wid: int) -> bool:
        """Steal half of the deepest victim deque into seat ``wid``'s.

        Called under the lock. Steals from the victim's **tail** — the
        victim keeps draining its head undisturbed — preserving claim
        order among the stolen tasks. Each theft is a ``task_steal``
        event causally rooted in the victim's ``dispatch_stream``.
        """
        victim, depth = -1, 0
        for vid, vdq in enumerate(self._deques):
            if vid != wid and len(vdq) > depth:
                victim, depth = vid, len(vdq)
        if depth == 0:
            return False
        vdq = self._deques[victim]
        stolen = [vdq.pop() for _ in range((depth + 1) // 2)]
        stolen.reverse()
        cause = self._stream_seq[victim]
        for task, _blob in stolen:
            self._m_stolen.inc()
            self.runtime.events.emit(
                "task_steal", task=task.name,
                version=task.tags.get("spec_version"),
                cause=cause, worker=wid, from_worker=victim)
        self._deques[wid].extend(stolen)
        return True

    # ------------------------------------------------------------------
    # the streaming dispatch cycle
    # ------------------------------------------------------------------
    def _dispatch_cycle(self, wid: int, work: Any) -> None:
        """Drive one acquired unit of work — and everything claimed or
        stolen along the way — to completion."""
        try:
            if isinstance(work, _Claimed):
                self._run_stream(wid, (work.task, work.blob))
            else:
                self._run_primary(wid, work)
        finally:
            with self._cond:
                self._busy[wid] = False
                self._stream_seq[wid] = None
                self._cond.notify_all()

    def _run_primary(self, wid: int, task: Task) -> None:
        """Resolve a task popped straight off the ready queues.

        Control tasks and closure-captured payloads run inline on the
        coordinator (see the module docstring); budget violators fail;
        everything else enters the streaming dispatch path.
        """
        t0 = self._clock()
        if task.abort_requested:
            self._finish_dispatch(wid, task, {}, None,
                                  wall_us=self._clock() - t0)
            return
        blob = self._serialize_or_none(task)
        if blob is not None:
            try:
                self._check_budget(task, blob)
            except PlatformError as exc:
                self._finish_dispatch(wid, task, {}, exc,
                                      wall_us=self._clock() - t0)
                return
        if blob is None or not self.supervisor.alive(wid):
            outputs: dict[str, Any] = {}
            failure: BaseException | None = None
            try:
                outputs = self._run_inline(task)
            except Exception as exc:
                failure = exc
            self._finish_dispatch(wid, task, outputs, failure,
                                  wall_us=self._clock() - t0)
            return
        self._run_stream(wid, (task, blob))

    def _run_stream(self, wid: int, head: tuple[Task, bytes]) -> None:
        """The streaming dispatch cycle for seat ``wid``.

        Repeatedly: top up the pipe window (at most ``batch_max``
        unanswered payloads) from the seat's deque — claiming extra
        ready work on the first pass, while the queues are deeper than
        the idle seats — then await exactly **one** reply and complete
        its task the moment it lands. A fast payload's completion (and
        the speculation check it feeds) is therefore never held hostage
        by a slow pipe-mate; a lost worker recovers just the in-pipe
        window, and claimed-but-unshipped work stays stealable in the
        deque the whole time. The cycle ends when the window and the
        deque are both empty.
        """
        fifo: deque[tuple[Task, bytes, float]] = deque()  # in-pipe window
        claim = self.batch_max > 1 and len(head[1]) <= self.batch_bytes
        pending_head: tuple[Task, bytes] | None = head
        while True:
            chunk: list[tuple[Task, bytes]] = []
            reaped: list[Task] = []
            inline_extras: list[Task] = []
            failed_extras: list[tuple[Task, PlatformError]] = []
            with self._cond:
                dq = self._deques[wid]
                if pending_head is not None:
                    dq.appendleft(pending_head)
                    pending_head = None
                if claim:
                    shippable, inline_extras, failed_extras = \
                        self._take_extras(wid)
                    dq.extend(shippable)
                    claim = False
                while dq and len(fifo) + len(chunk) < self.batch_max:
                    task, blob = dq.popleft()
                    if task.abort_requested:
                        reaped.append(task)
                        continue
                    self._note_dispatch(wid, task)
                    chunk.append((task, blob))
                drained = not dq
            # Claims that cannot ship resolve on the coordinator before
            # this thread blocks in the reply wait.
            for extra, exc in failed_extras:
                self._finish_dispatch(wid, extra, {}, exc)
            for extra in inline_extras:
                self._finish_inline_extra(wid, extra)
            for task in reaped:
                self._finish_dispatch(wid, task, {}, None)
            if chunk:
                if not self.supervisor.alive(wid):
                    # Seat degraded mid-run: the coordinator is the
                    # execution substrate of last resort.
                    for task, _blob in chunk:
                        t0 = self._clock()
                        status, payload = ((_SKIPPED, None)
                                           if task.abort_requested
                                           else self._reply_inline(task))
                        self._resolve_reply(wid, task, status, payload,
                                            wall_us=self._clock() - t0)
                else:
                    announce = self._stream_seq[wid] is None
                    try:
                        self.supervisor.send(wid, [b for _t, b in chunk])
                    except WorkerLost as lost:
                        now = self._clock()
                        fifo.extend((t, b, now) for t, b in chunk)
                        self._recover_stream(wid, lost, fifo)
                        continue
                    now = self._clock()
                    fifo.extend((t, b, now) for t, b in chunk)
                    self._account_shipped(chunk)
                    if announce:
                        self._stream_seq[wid] = self.runtime.events.emit(
                            "dispatch_stream", worker=wid,
                            payloads=len(chunk),
                            queued=len(self._deques[wid]))
            if not fifo:
                if drained:
                    return
                continue
            try:
                status, payload = self.supervisor.recv_reply(
                    wid, self.dispatch_timeout_s)
            except WorkerLost as lost:
                self._recover_stream(wid, lost, fifo)
                continue
            task, blob, t_sent = fifo.popleft()
            self._m_stream_depth.observe(len(fifo) + 1)
            self._resolve_reply(wid, task, status, payload,
                                wall_us=self._clock() - t_sent)


register_executor("procs", ProcessExecutor)

"""The dynamic data-flow graph (DFG).

Following the paper (§II-A), the DFG is "a snapshot of the application's
dynamic execution, rather than a static description of the code": tasks and
edges are added while the program runs (speculation spawns new subgraphs,
rollback destroys them and re-execution adds replacements).

The graph's central service beyond routing is *dependent traversal*: rollback
propagates a destroy signal down the chain of dependences (§III-B), which is
a forward reachability query answered here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import GraphError
from repro.sre.task import Task

__all__ = ["Edge", "DFG"]


@dataclass(frozen=True)
class Edge:
    """A directed dataflow edge ``src.src_port -> dst.dst_port``."""

    src: Task
    src_port: str
    dst: Task
    dst_port: str

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Edge {self.src.name}.{self.src_port} -> {self.dst.name}.{self.dst_port}>"


class DFG:
    """Mutable task graph with sink callbacks and reachability queries.

    Outputs may feed ordinary edges (task→task) or *sinks* — plain callables
    invoked with the produced value. Sinks model the boundary where data
    leaves the side-effect-free world (the Store node, wait buffers, metric
    probes) without paying a scheduled task per delivery.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._out_edges: dict[Task, list[Edge]] = {}
        self._in_edges: dict[Task, list[Edge]] = {}
        self._sinks: dict[tuple[Task, str], list[Callable[[Any], None]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register a task; names must be unique within one graph."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._out_edges.setdefault(task, [])
        self._in_edges.setdefault(task, [])
        return task

    def remove_task(self, task: Task) -> None:
        """Remove a task and all its edges and sinks (used after abort GC)."""
        if task.name not in self._tasks:
            return
        for edge in list(self._out_edges.get(task, ())):
            self._in_edges[edge.dst].remove(edge)
        for edge in list(self._in_edges.get(task, ())):
            self._out_edges[edge.src].remove(edge)
        self._out_edges.pop(task, None)
        self._in_edges.pop(task, None)
        for key in [k for k in self._sinks if k[0] is task]:
            del self._sinks[key]
        del self._tasks[task.name]

    def connect(self, src: Task, src_port: str, dst: Task, dst_port: str) -> Edge:
        """Add an edge. Both endpoints must already be in the graph."""
        self._require(src)
        self._require(dst)
        if dst_port not in dst.missing_inputs and dst_port not in dst.inputs:
            raise GraphError(
                f"task {dst.name!r} has no input port {dst_port!r}"
            )
        edge = Edge(src, src_port, dst, dst_port)
        self._out_edges[src].append(edge)
        self._in_edges[dst].append(edge)
        return edge

    def connect_sink(self, src: Task, src_port: str, fn: Callable[[Any], None]) -> None:
        """Route an output port to a plain callback (a graph boundary)."""
        self._require(src)
        self._sinks.setdefault((src, src_port), []).append(fn)

    def _require(self, task: Task) -> None:
        if self._tasks.get(task.name) is not task:
            raise GraphError(f"task {task.name!r} is not part of this graph")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, task: Task) -> bool:
        return self._tasks.get(task.name) is task

    def __len__(self) -> int:
        return len(self._tasks)

    def tasks(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def get(self, name: str) -> Task | None:
        return self._tasks.get(name)

    def out_edges(self, task: Task) -> list[Edge]:
        return list(self._out_edges.get(task, ()))

    def in_edges(self, task: Task) -> list[Edge]:
        return list(self._in_edges.get(task, ()))

    def sinks_for(self, task: Task, port: str) -> list[Callable[[Any], None]]:
        return list(self._sinks.get((task, port), ()))

    def successors(self, task: Task) -> list[Task]:
        seen: dict[str, Task] = {}
        for edge in self._out_edges.get(task, ()):
            seen.setdefault(edge.dst.name, edge.dst)
        return list(seen.values())

    def predecessors(self, task: Task) -> list[Task]:
        seen: dict[str, Task] = {}
        for edge in self._in_edges.get(task, ()):
            seen.setdefault(edge.src.name, edge.src)
        return list(seen.values())

    def dependents(self, roots: Iterable[Task], include_roots: bool = False) -> list[Task]:
        """Transitive forward closure — the destroy-signal footprint.

        Returns tasks reachable from ``roots`` via dataflow edges, in BFS
        order (deterministic), optionally including the roots themselves.
        """
        roots = list(roots)
        visited: dict[str, Task] = {t.name: t for t in roots}
        order: list[Task] = list(roots) if include_roots else []
        queue = deque(roots)
        while queue:
            current = queue.popleft()
            for nxt in self.successors(current):
                if nxt.name not in visited:
                    visited[nxt.name] = nxt
                    order.append(nxt)
                    queue.append(nxt)
        return order

    def has_cycle(self) -> bool:
        """True if the current graph contains a directed cycle.

        Dataflow graphs built by the pipelines are DAGs by construction; this
        check exists for validation in tests and user-built graphs.
        """
        indeg = {t: len(self._in_edges.get(t, ())) for t in self._tasks.values()}
        queue = deque(t for t, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            t = queue.popleft()
            seen += 1
            for nxt_edge in self._out_edges.get(t, ()):
                indeg[nxt_edge.dst] -= 1
                if indeg[nxt_edge.dst] == 0:
                    queue.append(nxt_edge.dst)
        return seen != len(self._tasks)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Export to Graphviz DOT (dashed = speculative, like the paper's
        figures; red = aborted)."""
        lines = ["digraph dfg {", "  rankdir=LR;"]
        for task in self._tasks.values():
            style = []
            if task.speculative:
                style.append("style=dashed")
            if task.state.value == "aborted":
                style.append("color=red")
            elif task.state.value == "done":
                style.append("color=gray40")
            shape = "diamond" if task.kind == "check" else "box"
            attrs = ", ".join(
                [f'label="{task.name}\\n({task.kind})"', f"shape={shape}"] + style
            )
            lines.append(f'  "{task.name}" [{attrs}];')
        for edges in self._out_edges.values():
            for e in edges:
                lines.append(
                    f'  "{e.src.name}" -> "{e.dst.name}" '
                    f'[label="{e.src_port}→{e.dst_port}"];'
                )
        lines.append("}")
        return "\n".join(lines)

    def to_networkx(self):
        """Export to a ``networkx.MultiDiGraph`` for analysis/visualisation."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for task in self._tasks.values():
            g.add_node(
                task.name,
                kind=task.kind,
                depth=task.depth,
                speculative=task.speculative,
                state=task.state.value,
            )
        for edges in self._out_edges.values():
            for e in edges:
                g.add_edge(e.src.name, e.dst.name, src_port=e.src_port, dst_port=e.dst_port)
        return g

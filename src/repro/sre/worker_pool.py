"""`repro worker-pool`: a WorkerSupervisor behind a TCP socket.

The distributed back-end (:mod:`repro.sre.executor_dist`) splits the
process back-end's coordinator/worker pair across hosts. This module is
the worker half: a long-lived daemon that hosts one
:class:`~repro.sre.executor_procs.WorkerSupervisor` per attached
coordinator session and proxies the streaming per-payload reply protocol
between the coordinator's sockets and the supervisor's pipes.

Framing is :mod:`repro.serve.wire` length-prefixed JSON — the same
frames, caps and failure semantics as the serve daemon — with payload
and reply bytes riding as base64 (``frames`` / ``payload_b64``).

Topology: one **control** connection per session plus one **data**
connection per worker seat.

Control connection ops (request → one reply frame each):

=============  ========================================================
op             meaning
=============  ========================================================
``attach``     create a session: spawn+start a ``WorkerSupervisor``
               with the requested seat count, arm the shipped fault
               plan (:mod:`repro.testing.faults` — drop/delay/hang/kill
               work on remote pools exactly as they do locally), reply
               with the ``session`` token
``heartbeat``  liveness probe (the coordinator's pool-loss detector)
``abort``      set/clear one seat's abort flag — the cross-host destroy
               relay; the ack closes the coordinator's
               ``dist_abort_rtt_us`` measurement
``segment``    materialise a shared-memory segment by name (attach on
               the coordinator's own host, create elsewhere) — the
               chunked-stream replacement for shm on the wire
``chunk``      one pushed block chunk landing into a created segment
``detach``     stop the session's workers, reply with the final
               pickled metrics/events snapshot (``snapshot_b64``), and
               tear the session down
``shutdown``   ack, then stop the whole pool daemon
=============  ========================================================

Data (seat) connections carry ``{"op": "seat", "session", "wid",
"incarnation"}`` as a hello, then ``batch`` frames downstream and one
reply frame per payload upstream. **One seat connection carries exactly
one worker incarnation's traffic**: any worker loss is relayed as a
``{"lost": cause, "respawned": bool}`` frame and the connection is
closed — the coordinator reconnects with a bumped incarnation, and a
reconnect onto a seat whose previous connection left in-flight state
behind recycles the local worker first. That closed-socket barrier is
what keeps the streamed reply sequence unambiguous across crashes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import socket
import threading
import uuid
from dataclasses import dataclass

from repro.errors import ExperimentError, TransportError, WorkerLost
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import parse_traceparent
from repro.serve.wire import (TRACEPARENT_KEY, decode_blob, encode_blob,
                              recv_frame, send_frame)
from repro.sre import shm
from repro.sre.executor_procs import (DEFAULT_DISPATCH_TIMEOUT_S,
                                      DEFAULT_HARVEST_TIMEOUT_S,
                                      WorkerSupervisor)
from repro.sre.runtime import Runtime
from repro.sre.task import PAYLOAD_PROTOCOL
from repro.testing.faults import FaultPlan

__all__ = ["PoolSettings", "WorkerPoolServer"]


@dataclass
class PoolSettings:
    """Every knob of the pool daemon, CLI-mappable and test-injectable."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port back from .port
    #: written with the bound port once listening — CI's rendezvous.
    port_file: str | None = None
    #: default chaos plan armed on every attached session's workers when
    #: the coordinator ships none — `repro worker-pool --fault kill@3`
    #: injects faults on the *remote* side of the wire.
    fault_plan: str | None = None
    #: respawn budget per seat (per session).
    max_respawns: int = 3
    #: shutdown grace per worker for the final metrics/events harvest.
    harvest_timeout_s: float = DEFAULT_HARVEST_TIMEOUT_S
    #: cap on seats a single attach may request.
    max_workers: int = 16
    #: JSONL path for the pool's own lifecycle events (attach/detach).
    events_out: str | None = None


class _Seat:
    """Pool-side per-seat connection state."""

    __slots__ = ("wid", "conn", "thread", "gen", "dirty", "seq", "op_lock")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.conn: socket.socket | None = None
        self.thread: threading.Thread | None = None
        #: bumped on every seat (re)connect; a handler whose gen is stale
        #: has been superseded and must exit without touching the worker.
        self.gen = 0
        #: True while the worker may hold in-flight or desynchronised
        #: state from a previous connection — a fresh attach recycles it.
        self.dirty = False
        #: per-connection relay sequence (reset at each handshake).
        self.seq = 0
        #: serialises note_lost/respawn between a seat handler and a
        #: superseding attach.
        self.op_lock = threading.Lock()


class _Session:
    """One attached coordinator: a started supervisor + its accounting."""

    def __init__(self, sid: str, supervisor: WorkerSupervisor,
                 runtime: Runtime, dispatch_timeout_s: float) -> None:
        self.sid = sid
        self.supervisor = supervisor
        self.runtime = runtime
        self.dispatch_timeout_s = dispatch_timeout_s
        self.seats = [_Seat(w) for w in range(supervisor.n_workers)]
        self.segments_created: list[str] = []
        self.segments_attached: list[str] = []
        self.lock = threading.Lock()
        self.stopped = False


def _close(sock: socket.socket | None) -> None:
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - defensive
        pass


def _readable(sock: socket.socket) -> bool:
    try:
        ready, _w, _x = select.select([sock], [], [], 0)
    except (OSError, ValueError):  # closed under us
        return False
    return bool(ready)


class WorkerPoolServer:
    """The pool daemon. ``start()`` binds and spins the accept loop;
    ``stop()`` tears every session down (workers stopped, pushed
    segments released, sockets closed)."""

    def __init__(self, settings: PoolSettings | None = None) -> None:
        self.settings = settings or PoolSettings()
        FaultPlan.parse(self.settings.fault_plan)  # validate eagerly
        self.events = EventLog(path=self.settings.events_out,
                               meta={"app": "worker-pool"})
        self._sessions: dict[str, _Session] = {}
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self.shutdown_requested = threading.Event()
        self._stopping = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            raise ExperimentError("worker pool is not started")
        return self._listener.getsockname()[1]

    def start(self) -> "WorkerPoolServer":
        s = self.settings
        self._listener = socket.create_server(
            (s.host, s.port), backlog=16, reuse_port=False)
        self._listener.settimeout(0.2)  # accept loop polls the stop flag
        t = threading.Thread(target=self._accept_loop,
                             name="pool-accept", daemon=True)
        t.start()
        self._threads.append(t)
        self.events.emit("pool_start", host=s.host, port=self.port,
                         pid=os.getpid(), fault=s.fault_plan)
        if s.port_file:
            with open(s.port_file, "w", encoding="utf-8") as fh:
                fh.write(str(self.port))
        return self

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self.shutdown_requested.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        with self._lock:
            sids = list(self._sessions)
        for sid in sids:
            self._teardown_session(sid)
        for t in self._threads:
            t.join(timeout=10.0)
        self.events.emit("pool_stop")
        self.events.close()

    def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or KeyboardInterrupt), then stop."""
        try:
            while not self.shutdown_requested.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        self.stop()

    # ------------------------------------------------------------------
    # connection routing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self.shutdown_requested.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us: shutting down
                return
            t = threading.Thread(target=self._serve_hello, args=(conn,),
                                 name="pool-conn", daemon=True)
            t.start()

    def _serve_hello(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
        except (TransportError, OSError):
            _close(conn)
            return
        if hello is None:
            _close(conn)
            return
        op = hello.get("op")
        if op == "attach":
            self._serve_control(conn, hello)
        elif op == "seat":
            self._serve_seat(conn, hello)
        elif op == "ping":
            self._reply(conn, {"ok": True, "op": "ping",
                               "pid": os.getpid()})
            _close(conn)
        elif op == "shutdown":
            self._reply(conn, {"ok": True})
            _close(conn)
            self.shutdown_requested.set()
        else:
            self._reply(conn, {"ok": False, "error": f"unknown op {op!r}"})
            _close(conn)

    @staticmethod
    def _reply(conn: socket.socket, obj: dict) -> bool:
        try:
            send_frame(conn, obj)
            return True
        except (TransportError, OSError):
            return False

    # ------------------------------------------------------------------
    # control connection: attach + session ops
    # ------------------------------------------------------------------
    def _serve_control(self, conn: socket.socket, req: dict) -> None:
        try:
            sess = self._attach(req)
        except (ExperimentError, ValueError, TypeError, OSError) as exc:
            self._reply(conn, {"ok": False,
                               "error": f"{type(exc).__name__}: {exc}"})
            _close(conn)
            return
        self._reply(conn, {"ok": True, "session": sess.sid,
                           "workers": sess.supervisor.n_workers,
                           "pid": os.getpid()})
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except (TransportError, OSError):
                    return  # coordinator died or sent garbage: teardown
                if frame is None:
                    return
                op = frame.get("op")
                handler = getattr(self, f"_ctl_{op}", None) \
                    if isinstance(op, str) else None
                if handler is None:
                    reply = {"ok": False, "error": f"unknown op {op!r}"}
                else:
                    try:
                        reply = handler(sess, frame)
                    except Exception as exc:  # noqa: BLE001 - reply, don't die
                        reply = {"ok": False,
                                 "error": f"{type(exc).__name__}: {exc}"}
                if not self._reply(conn, reply):
                    return
                if op == "detach":
                    return
                if op == "shutdown":
                    self.shutdown_requested.set()
                    return
        finally:
            _close(conn)
            self._teardown_session(sess.sid)

    def _attach(self, req: dict) -> _Session:
        s = self.settings
        workers = int(req.get("workers", 4))
        if not 1 <= workers <= s.max_workers:
            raise ExperimentError(
                f"attach wants {workers} seats; this pool allows "
                f"1..{s.max_workers}")
        fault = req.get("fault")
        plan = FaultPlan.parse(fault if fault is not None else s.fault_plan)
        dispatch_timeout_s = float(
            req.get("dispatch_timeout_s", DEFAULT_DISPATCH_TIMEOUT_S))
        # Same spawn idiom as the serve daemon's warm lanes: the resource
        # tracker must exist before workers fork (a private per-worker
        # tracker would unlink live segments when its worker exits).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        runtime = Runtime(metrics=MetricsRegistry(), events=EventLog(),
                          track_memory=False)
        supervisor = WorkerSupervisor(
            self._ctx, workers, runtime=runtime, fault_plan=plan,
            max_respawns=s.max_respawns,
            harvest_timeout_s=s.harvest_timeout_s)
        supervisor.start()
        sess = _Session(uuid.uuid4().hex, supervisor, runtime,
                        dispatch_timeout_s)
        with self._lock:
            self._sessions[sess.sid] = sess
        # Lands in the coordinator's event log at detach (the snapshot
        # merge), tagged with this pool's clock.
        sess.runtime.events.emit(
            "remote_pool_attach", session=sess.sid, workers=workers,
            fault=plan.spec() if plan is not None else None,
            pool_pid=os.getpid())
        self.events.emit("pool_session_attach", session=sess.sid,
                         workers=workers,
                         fault=plan.spec() if plan is not None else None)
        return sess

    def _ctl_heartbeat(self, sess: _Session, req: dict) -> dict:
        return {"ok": True}

    def _ctl_abort(self, sess: _Session, req: dict) -> dict:
        wid = int(req.get("wid", -1))
        if not 0 <= wid < sess.supervisor.n_workers:
            return {"ok": False, "error": f"no seat {wid}"}
        sess.supervisor.abort_flags[wid] = 1 if req.get("value") else 0
        return {"ok": True}

    def _ctl_segment(self, sess: _Session, req: dict) -> dict:
        name = str(req.get("name"))
        size = int(req.get("size", 0))
        if not name or size <= 0:
            return {"ok": False, "error": "segment needs name and size"}
        created = shm.materialize_segment(name, size)
        with sess.lock:
            target = (sess.segments_created if created
                      else sess.segments_attached)
            if name not in target:
                target.append(name)
        return {"ok": True, "created": created}

    def _ctl_chunk(self, sess: _Session, req: dict) -> dict:
        shm.write_block(str(req.get("segment")), int(req.get("offset", -1)),
                        decode_blob(req.get("data_b64", "")))
        return {"ok": True}

    def _ctl_detach(self, sess: _Session, req: dict) -> dict:
        self._stop_session(sess)
        snapshot = pickle.dumps(
            {"metrics": sess.runtime.metrics.snapshot(),
             "events": sess.runtime.events.events()},
            protocol=PAYLOAD_PROTOCOL)
        return {"ok": True, "snapshot_b64": encode_blob(snapshot)}

    def _ctl_shutdown(self, sess: _Session, req: dict) -> dict:
        return {"ok": True}

    # ------------------------------------------------------------------
    # session teardown
    # ------------------------------------------------------------------
    def _stop_session(self, sess: _Session) -> None:
        """Quiesce one session: invalidate seats, stop workers (final
        harvest folds their metrics/events into the session runtime)."""
        with sess.lock:
            if sess.stopped:
                return
            sess.stopped = True
            seats = list(sess.seats)
            for seat in seats:
                seat.gen += 1  # supersede every live handler
        for seat in seats:
            _close(seat.conn)
        for seat in seats:
            t = seat.thread
            if t is not None and t is not threading.current_thread():
                t.join(timeout=5.0)
        sess.supervisor.stop()

    def _teardown_session(self, sid: str) -> None:
        with self._lock:
            sess = self._sessions.pop(sid, None)
        if sess is None:
            return
        self._stop_session(sess)
        # Workers are down: pushed segment copies can be unlinked, and
        # same-host attachments just unmapped (the coordinator owns them).
        for name in sess.segments_created:
            shm.release_segment(name, unlink=True)
        for name in sess.segments_attached:
            shm.release_segment(name, unlink=False)
        self.events.emit("pool_session_detach", session=sess.sid)

    # ------------------------------------------------------------------
    # seat (data) connections
    # ------------------------------------------------------------------
    def _serve_seat(self, conn: socket.socket, hello: dict) -> None:
        sid = hello.get("session")
        wid = hello.get("wid")
        with self._lock:
            sess = self._sessions.get(sid) if isinstance(sid, str) else None
        if (sess is None or not isinstance(wid, int)
                or not 0 <= wid < sess.supervisor.n_workers):
            self._reply(conn, {"ok": False,
                               "error": f"unknown session/seat "
                                        f"{sid!r}/{wid!r}"})
            _close(conn)
            return
        seat = sess.seats[wid]
        with sess.lock:
            if sess.stopped:
                self._reply(conn, {"ok": False, "error": "session stopped"})
                _close(conn)
                return
            old = seat.conn
            seat.gen += 1
            my_gen = seat.gen
            seat.conn = conn
            seat.thread = threading.current_thread()
            seat.seq = 0
        _close(old)  # supersede: at most one live connection per seat
        sup = sess.supervisor
        with seat.op_lock:
            if seat.dirty and sup.alive(wid):
                # The previous connection died with payloads in flight:
                # the worker's pipe state is unknowable, so recycle it —
                # this *is* the reconnect-with-bumped-incarnation barrier.
                seq = sup.note_lost(wid, WorkerLost(wid, "hang"), [])
                with sess.runtime.events.cause(seq):
                    sup.respawn(wid)
                seat.dirty = False
            ok = sup.alive(wid)
        if not self._reply(conn, {"ok": bool(ok), "degraded": not ok,
                                  "incarnation":
                                      hello.get("incarnation", 0)}):
            _close(conn)
            return
        if not ok:
            _close(conn)
            return
        try:
            self._seat_loop(sess, seat, my_gen, conn)
        finally:
            with sess.lock:
                if seat.gen == my_gen and seat.conn is conn:
                    seat.conn = None
            _close(conn)

    def _seat_loop(self, sess: _Session, seat: _Seat, my_gen: int,
                   conn: socket.socket) -> None:
        sup = sess.supervisor
        wid = seat.wid
        owed = 0
        try:
            while seat.gen == my_gen:
                if owed == 0:
                    req = recv_frame(conn)  # idle seat: block for a batch
                    if req is None:
                        return
                    owed += self._forward(sess, seat, req)
                    continue
                # Service freshly-arrived batches without blocking, so
                # the worker's pipe never runs dry while we await replies.
                while _readable(conn):
                    req = recv_frame(conn)
                    if req is None:
                        return
                    owed += self._forward(sess, seat, req)
                status, payload = sup.recv_reply(
                    wid, sess.dispatch_timeout_s)
                owed -= 1
                if owed == 0:
                    seat.dirty = False  # idle again: nothing in flight
                seat.seq += 1
                send_frame(conn, {
                    "seq": seat.seq, "status": status,
                    "payload_b64": encode_blob(
                        pickle.dumps(payload, protocol=PAYLOAD_PROTOCOL)),
                })
        except WorkerLost as lost:
            with sess.lock:
                superseded = seat.gen != my_gen
            if superseded:
                return  # the new handler owns recovery
            with seat.op_lock:
                seq = sup.note_lost(wid, lost, [])
                with sess.runtime.events.cause(seq):
                    respawned = sup.respawn(wid)
                seat.dirty = False
            self._reply(conn, {"lost": lost.cause,
                               "respawned": bool(respawned),
                               "exitcode": lost.exitcode})
            # One incarnation per connection: close so the reply stream
            # can never interleave two workers' sequences.
            return
        except (TransportError, OSError):
            return  # conn died or was superseded; dirty state (if any)
            # is recycled by the next attach

    def _forward(self, sess: _Session, seat: _Seat, req: dict) -> int:
        """Decode one batch frame and ship it down the worker's pipe."""
        if req.get("op") != "batch":
            raise TransportError(
                f"unexpected seat op {req.get('op')!r} (want 'batch')")
        frames = [decode_blob(f) for f in req.get("frames", [])]
        if not frames:
            return 0
        ctx = parse_traceparent(req.get(TRACEPARENT_KEY))
        if ctx is not None:
            # supervisor.send stamps batch headers from the session
            # log's active context, exactly as the local back-end does.
            sess.runtime.events.set_trace_context(ctx)
        seat.dirty = True  # in-flight state exists until owed drains
        sess.supervisor.send(seat.wid, frames)
        return len(frames)

"""Resource-allocation (dispatch) policies for speculative work.

The paper integrates three policies (§V-B):

* **conservative** — natural execution first; speculative tasks are
  dispatched only when no non-speculative task is ready.
* **aggressive** — actively prefers any speculative task over
  non-speculative ones.
* **balanced** — dispatches an equal number of speculative and
  non-speculative tasks (1:1 interleave when both are available).

§II-B also lists two further resource-management options, implemented here:
*"limiting the amount of speculative tasks allowed to run concurrently"*
(:class:`ThrottledPolicy`) and *"favoring a given speculative to
non-speculative ratio"* (:class:`RatioPolicy`).

Policies select *which class* of ready queue to serve next; ordering within
a class is the queue's (control > depth > FCFS). ``FCFSPolicy`` ignores the
class split entirely and exists for the scheduler ablation.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.sre.queues import ReadyQueue
from repro.sre.task import Task

__all__ = [
    "DispatchPolicy",
    "ConservativePolicy",
    "AggressivePolicy",
    "BalancedPolicy",
    "RatioPolicy",
    "ThrottledPolicy",
    "FCFSPolicy",
    "get_policy",
]


class DispatchPolicy:
    """Strategy deciding which ready task a freed worker receives."""

    name = "base"

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        """Pop and return the next task to dispatch, or None if idle."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-run state (called once per run)."""

    # Executors report speculative occupancy so occupancy-aware policies
    # (ThrottledPolicy) can bound in-flight speculation. Default: ignore.
    def notify_started(self, task: Task) -> None:
        """A selected task began executing."""

    def notify_finished(self, task: Task) -> None:
        """A previously started task completed or was reaped."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class ConservativePolicy(DispatchPolicy):
    """Speculate only on otherwise-idle resources."""

    name = "conservative"

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        return natural.pop() or speculative.pop()


class AggressivePolicy(DispatchPolicy):
    """Prefer speculative tasks whenever any are ready."""

    name = "aggressive"

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        return speculative.pop() or natural.pop()


class BalancedPolicy(DispatchPolicy):
    """Alternate 1:1 between speculative and natural work.

    When only one class has ready tasks it is served, but the alternation
    counter only advances on the class actually dispatched, so a burst of
    one class does not starve the other once it reappears.
    """

    name = "balanced"

    def __init__(self) -> None:
        self._next_spec = False

    def reset(self) -> None:
        self._next_spec = False

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        first, second = (
            (speculative, natural) if self._next_spec else (natural, speculative)
        )
        task = first.pop()
        if task is None:
            task = second.pop()
        if task is not None:
            self._next_spec = not task.speculative
        return task


class RatioPolicy(DispatchPolicy):
    """Serve ``spec_share`` of dispatches to speculative work (§II-B).

    ``RatioPolicy(0.5)`` behaves like balanced; ``0.25`` gives speculation
    one dispatch in four. A deficit counter keeps the long-run ratio exact
    even when one class is intermittently empty.
    """

    name = "ratio"

    def __init__(self, spec_share: float = 0.5) -> None:
        if not (0.0 <= spec_share <= 1.0):
            raise SchedulingError(f"spec_share must be in [0, 1], got {spec_share}")
        self.spec_share = spec_share
        self._credit = 0.0

    def reset(self) -> None:
        self._credit = 0.0

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        self._credit += self.spec_share
        prefer_spec = self._credit >= 1.0
        first, second = (
            (speculative, natural) if prefer_spec else (natural, speculative)
        )
        task = first.pop()
        if task is None:
            task = second.pop()
        if task is not None and task.speculative:
            self._credit -= 1.0
        # Clamp symmetrically: unbounded positive credit would hoard
        # speculation entitlement, and unbounded *negative* credit (from
        # speculative dispatches via the natural-empty fallback) would starve
        # speculation long after natural work returns.
        self._credit = max(-2.0, min(self._credit, 2.0))
        return task


class ThrottledPolicy(DispatchPolicy):
    """Cap concurrently *running* speculative tasks (§II-B).

    Wraps an inner policy; once ``max_speculative`` speculative tasks are
    in flight, only natural work is dispatched until one finishes.
    """

    name = "throttled"

    def __init__(self, inner: "DispatchPolicy | None" = None,
                 max_speculative: int = 4) -> None:
        if max_speculative < 0:
            raise SchedulingError("max_speculative must be >= 0")
        self.inner = inner if inner is not None else BalancedPolicy()
        self.max_speculative = max_speculative
        self._inflight = 0

    @property
    def speculative_inflight(self) -> int:
        return self._inflight

    def reset(self) -> None:
        self._inflight = 0
        self.inner.reset()

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        if self._inflight >= self.max_speculative:
            return natural.pop()
        return self.inner.select(natural, speculative)

    def notify_started(self, task: Task) -> None:
        if task.speculative:
            self._inflight += 1

    def notify_finished(self, task: Task) -> None:
        if task.speculative:
            self._inflight -= 1
            if self._inflight < 0:  # pragma: no cover - defensive
                raise SchedulingError("speculative in-flight count underflow")


class FCFSPolicy(DispatchPolicy):
    """Strict global arrival order, blind to class and depth (ablation only).

    The paper calls this breadth-first behaviour "toxic to memory locality"
    and latency; the ablation bench quantifies that claim on our model.
    """

    name = "fcfs"

    def select(self, natural: ReadyQueue, speculative: ReadyQueue) -> Task | None:
        a, b = natural.peek(), speculative.peek()
        if a is None:
            return speculative.pop()
        if b is None:
            return natural.pop()
        return natural.pop() if a.seq <= b.seq else speculative.pop()


_POLICIES = {
    cls.name: cls
    for cls in (ConservativePolicy, AggressivePolicy, BalancedPolicy,
                RatioPolicy, ThrottledPolicy, FCFSPolicy)
}


def get_policy(name: str) -> DispatchPolicy:
    """Instantiate a dispatch policy by its paper name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown dispatch policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None

"""Memory accounting for task results.

The paper's rollback discussion (§III-B) requires reclaiming the memory of
destroyed speculative results. Python's GC does the actual reclamation; this
ledger provides the *accounting* — how many bytes of speculative results were
allocated, committed, or wasted — which the resource-management experiments
report.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["MemoryLedger", "sizeof_value"]


def sizeof_value(value: Any) -> int:
    """Approximate payload size in bytes of a task result.

    NumPy arrays report their buffer size; bytes-likes their length;
    containers recurse one level. Scalars and small objects count a nominal
    16 bytes — the ledger tracks streaming payloads, not Python overhead.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(sizeof_value(v) for v in value)
    if isinstance(value, dict):
        return sum(sizeof_value(v) for v in value.values())
    return 16


class MemoryLedger:
    """Tracks live/peak bytes, split by speculative vs natural results."""

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self.speculative_allocated = 0
        self.speculative_wasted = 0
        self._holdings: dict[str, tuple[int, bool]] = {}

    def allocate(self, owner: str, nbytes: int, speculative: bool) -> None:
        """Record ``nbytes`` of results produced by task ``owner``."""
        prev = self._holdings.get(owner)
        if prev is not None:
            self._release(owner, wasted=False)
        self._holdings[owner] = (nbytes, speculative)
        self.live_bytes += nbytes
        self.total_allocated += nbytes
        if speculative:
            self.speculative_allocated += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def commit(self, owner: str) -> None:
        """Release accounting for results that reached a committed sink."""
        self._release(owner, wasted=False)

    def discard(self, owner: str) -> None:
        """Release accounting for rolled-back results, counting waste."""
        self._release(owner, wasted=True)

    def _release(self, owner: str, wasted: bool) -> None:
        entry = self._holdings.pop(owner, None)
        if entry is None:
            return
        nbytes, speculative = entry
        self.live_bytes -= nbytes
        if wasted and speculative:
            self.speculative_wasted += nbytes

    def summary(self) -> dict[str, int]:
        """Counters as a plain dict for reports."""
        return {
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "total_allocated": self.total_allocated,
            "speculative_allocated": self.speculative_allocated,
            "speculative_wasted": self.speculative_wasted,
        }

"""SRE — the Streaming Runtime Environment substrate.

Re-implementation (in Python) of the runtime the paper builds on [Azuelos,
MSc thesis 2009]: computations are side-effect-free :class:`~repro.sre.task.Task`
objects grouped under :class:`~repro.sre.supertask.SuperTask` routers, wired
into a dynamic data-flow graph. A priority-based scheduler favouring pipeline
depth (FCFS tie-break) dispatches ready tasks onto workers.

Three executors share all of this machinery:

* :class:`~repro.sre.executor_sim.SimulatedExecutor` — runs the *actual* task
  functions on real data while time advances on a discrete-event clock using
  per-platform cost models. This is the primary substrate for reproducing the
  paper's latency figures (deterministic, hardware-independent).
* :class:`~repro.sre.executor_threads.ThreadedExecutor` — a real thread pool
  for live wall-clock runs (GIL-bound for pure-Python work; NumPy kernels
  release the GIL).
* :class:`~repro.sre.executor_procs.ProcessExecutor` — a multiprocessing
  worker pool; task bodies ship as pickled payloads to other address spaces,
  so pure-Python kernels run truly in parallel while the runtime stays on
  the coordinator.
"""

from repro.sre.graph import DFG, Edge
from repro.sre.memory import MemoryLedger
from repro.sre.policies import (
    AggressivePolicy,
    BalancedPolicy,
    ConservativePolicy,
    DispatchPolicy,
    FCFSPolicy,
    get_policy,
)
from repro.sre.queues import ReadyQueue
from repro.sre.registry import (
    EXECUTORS,
    executor_names,
    make_executor,
    register_executor,
)
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockRef, BlockStore
from repro.sre.supertask import SuperTask
from repro.sre.task import Task, TaskState
from repro.sre.executor_base import LiveExecutor
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.executor_threads import ThreadedExecutor
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.replay import (
    CascadeSummary,
    DecisionSchedule,
    ReplayDirector,
    ReplayResult,
    decision_signature,
    extract_schedule,
    render_diff,
    replay_path,
)

__all__ = [
    "DFG",
    "Edge",
    "MemoryLedger",
    "DispatchPolicy",
    "ConservativePolicy",
    "AggressivePolicy",
    "BalancedPolicy",
    "FCFSPolicy",
    "get_policy",
    "ReadyQueue",
    "Runtime",
    "SuperTask",
    "Task",
    "TaskState",
    "SimulatedExecutor",
    "LiveExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "BlockRef",
    "BlockStore",
    "EXECUTORS",
    "register_executor",
    "make_executor",
    "executor_names",
    "CascadeSummary",
    "DecisionSchedule",
    "ReplayDirector",
    "ReplayResult",
    "decision_signature",
    "extract_schedule",
    "render_diff",
    "replay_path",
]

"""Shared lifecycle for the live (wall-clock) executors.

:class:`LiveExecutor` owns everything the threaded and process back-ends
have in common: the runtime lock, the worker condition variable, the
wall-clock µs time source, input open/close discipline, the drain protocol
(``wait_idle``) and the coordinator worker loop. Subclasses supply the
execution substrate through a few hooks:

* :meth:`_execute` — run one dispatched task's function (inline on the
  coordinator thread, or shipped to another address space);
* :meth:`_acquire_work` — called under the lock to take the next unit of
  work for a seat (base: pop the ready queues through the policy and
  account the dispatch). Back-ends with seat-local backlogs (the process
  executor's work-stealing deques) override this to drain or steal them;
* :meth:`_dispatch_cycle` — run one acquired unit of work to completion.
  The base implementation pairs one blocking :meth:`_execute` with one
  :meth:`_finish_dispatch`; a streaming back-end overrides it to complete
  *many* tasks per cycle, each the moment its reply lands, so completion
  accounting is not coupled to a single blocking ``_execute`` call;
* :meth:`_start_backend` / :meth:`_stop_backend` — bring auxiliary
  resources (worker processes, pipes) up and down around the coordinator
  threads.

Every runtime decision — dispatch policy, speculation, rollback — happens
on the coordinator under one lock, whatever the substrate. Task failures
never kill a coordinator thread: the failing task is reaped like a
mis-speculation, its dependence cone is aborted, and the error is re-raised
from :meth:`run` / :meth:`raise_errors` once the graph drains.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import SchedulingError, TaskExecutionError
from repro.sre.policies import DispatchPolicy, get_policy
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["LiveExecutor"]


class LiveExecutor:
    """Base class running a :class:`~repro.sre.runtime.Runtime` on real time.

    Usage (identical for every live back-end)::

        ex = SomeExecutor(runtime, workers=4, policy="balanced")
        ex.start()
        ...deliver external inputs (possibly over time)...
        ex.close_input()
        ex.wait_idle()
        ex.shutdown()

    or simply ``ex.run()`` when all inputs are already delivered.

    Observability: the executor clock is *wall time in µs since
    construction*, and every trace record and metric uses it — so
    :mod:`repro.metrics.traceview` exports (Chrome trace, ASCII Gantt)
    read identically for simulated and live runs. The executor registers
    its instruments (``exec_tasks_dispatched``, ``exec_inflight``,
    ``exec_task_wall_us{kind}``, ...) on ``runtime.metrics``; see
    docs/observability.md for the full catalogue. Worker ids are attached
    to ``task_start`` / ``task_done`` trace records.
    """

    #: Poll interval for the worker wait loop (seconds). The paper's workers
    #: poll for assigned tasks; we wait on a condition with a timeout so
    #: shutdown is prompt even if a notify is missed.
    POLL_S = 0.02

    def __init__(
        self,
        runtime: Runtime,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int = 4,
    ) -> None:
        if workers < 1:
            raise SchedulingError("need at least one worker")
        self.runtime = runtime
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.policy.reset()
        self.n_workers = workers
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._inflight = 0
        self._input_open = True
        self._started = False
        self._errors: list[TaskExecutionError] = []
        self._t0 = time.perf_counter()
        runtime.set_clock(self._clock)
        runtime.add_ready_listener(self._on_ready)
        m = runtime.metrics
        self._m_dispatched = m.counter(
            "exec_tasks_dispatched", "tasks taken off a ready queue by a worker")
        self._m_failures = m.counter(
            "exec_task_failures", "task bodies that raised on a worker")
        self._m_inflight = m.gauge(
            "exec_inflight", "tasks currently executing on workers")
        self._m_workers = m.gauge("exec_workers", "configured worker count")
        self._m_workers.set(workers)
        self._m_task_wall = m.histogram(
            "exec_task_wall_us",
            "wall-clock µs a worker spent inside one task body",
            labelnames=("kind",))

    # ------------------------------------------------------------------
    # clock: wall time in µs since executor construction
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    @property
    def now(self) -> float:
        """Wall time in µs since executor construction (the trace clock)."""
        return self._clock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring up the execution substrate and the coordinator threads."""
        if self._started:
            raise SchedulingError("executor already started")
        self._started = True
        self._start_backend()
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._worker_loop, args=(i,), name=f"sre-worker-{i}", daemon=True
            )
            self._threads.append(t)
            t.start()

    def deliver(self, task: Task, port: str, value: Any) -> None:
        """Thread-safe external input injection.

        Raises :class:`SchedulingError` after :meth:`close_input` — input
        arriving post-close could race :meth:`wait_idle` into declaring the
        run drained while work is still appearing.
        """
        with self._cond:
            if not self._input_open:
                raise SchedulingError(
                    f"delivery to task {task.name!r} after close_input()"
                )
            self.runtime.deliver_external(task, port, value)

    def submit(self, fn, *args, **kwargs):
        """Run a runtime-mutating callable under the executor lock."""
        with self._cond:
            return fn(*args, **kwargs)

    def close_input(self) -> None:
        """Declare that no further external inputs will arrive."""
        with self._cond:
            self._input_open = False
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until input is closed and all work has drained.

        Returns False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                idle = (
                    not self._input_open
                    and self._inflight == 0
                    and not self.runtime.natural_queue
                    and not self.runtime.speculative_queue
                )
                if idle:
                    return True
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(self.POLL_S if remaining is None else min(self.POLL_S, remaining))

    def shutdown(self) -> None:
        """Stop and join the coordinator threads, then the substrate."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for t in self._threads:
            t.join()
        self._threads.clear()
        self._stop_backend()

    def run(self, timeout: float | None = None) -> float:
        """Convenience: start, close input, drain, shut down.

        Returns the wall-clock finish time (µs on the executor clock).
        Re-raises the first task failure, if any, once the graph drained.
        """
        self.start()
        self.close_input()
        ok = self.wait_idle(timeout=timeout)
        self.shutdown()
        if not ok:
            raise SchedulingError(f"executor did not drain within {timeout}s")
        self.raise_errors()
        return self.now

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[TaskExecutionError]:
        """Task failures captured so far (the tasks were reaped + aborted)."""
        with self._cond:
            return list(self._errors)

    def raise_errors(self) -> None:
        """Re-raise the first captured task failure, if any."""
        with self._cond:
            if self._errors:
                raise self._errors[0]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def utilisation(self) -> float:
        """Mean fraction of elapsed wall time workers spent on tasks.

        Computed from per-task start/finish stamps on the executor clock:
        ``sum(task occupancy) / (elapsed µs × workers)``. For the process
        back-end "on tasks" includes the coordinator thread's wait on its
        worker's pipe — occupancy, not CPU time.
        """
        now = self.now
        if now <= 0:
            return 0.0
        busy = 0.0
        for t in self.runtime.graph.tasks():
            if t.start_time is not None and t.finish_time is not None:
                busy += t.finish_time - t.start_time
        return busy / (now * self.n_workers)

    # ------------------------------------------------------------------
    # substrate hooks
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        """Bring up substrate resources before coordinator threads spawn."""

    def _stop_backend(self) -> None:
        """Tear down substrate resources after coordinator threads joined."""

    def _note_dispatch(self, wid: int, task: Task) -> None:
        """Called under the lock when worker ``wid`` takes ``task``."""

    def _note_complete(self, wid: int, task: Task) -> None:
        """Called under the lock when worker ``wid`` finishes ``task``."""

    def _execute(self, wid: int, task: Task) -> dict[str, Any]:
        """Run one task's function and return its normalised outputs.

        Called *outside* the lock; exceptions become task failures.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # dispatch bookkeeping (shared by the worker loop and batching
    # back-ends that take extra tasks mid-_execute)
    # ------------------------------------------------------------------
    def _begin_dispatch(self, wid: int, task: Task, *,
                        queued: bool = False) -> None:
        """Account one task entering execution. Caller holds the lock.

        ``queued=True`` accounts a task claimed into a seat-local backlog
        (it counts as in flight — ``wait_idle`` must not declare the run
        drained while it is pending) without notifying the substrate via
        :meth:`_note_dispatch`; the back-end calls that itself when the
        payload actually ships, possibly from a different seat after a
        steal.
        """
        self.runtime.begin_task(task, worker=wid)
        self.policy.notify_started(task)
        self._inflight += 1
        self._m_dispatched.inc()
        self._m_inflight.set(self._inflight)
        if not queued:
            self._note_dispatch(wid, task)

    def _finish_dispatch(
        self,
        wid: int,
        task: Task,
        outputs: dict[str, Any],
        failure: BaseException | None,
        wall_us: float | None = None,
    ) -> None:
        """Account one dispatched task finishing (acquires the lock).

        Failures never kill a coordinator thread: the failing task is
        reaped like a mis-speculation — flagged so ``finish_task``
        discards the (empty) outputs, then its dependence cone destroyed.
        """
        if wall_us is not None:
            self._m_task_wall.labels(kind=task.kind).observe(wall_us)
        with self._cond:
            if failure is not None:
                self._m_failures.inc()
                task.request_abort()
                self.runtime.trace.record(
                    self.runtime.now, "task_failed", task.name,
                    task_kind=task.kind, error=repr(failure),
                )
            self._note_complete(wid, task)
            self.runtime.finish_task(task, outputs, precomputed=True,
                                     worker=wid)
            self.policy.notify_finished(task)
            self._inflight -= 1
            self._m_inflight.set(self._inflight)
            if failure is not None:
                self.runtime.abort_dependents([task], include_roots=False)
                self._errors.append(TaskExecutionError(task.name, failure))
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # coordinator worker loop
    # ------------------------------------------------------------------
    def _on_ready(self, task: Task) -> None:
        # May be called with or without the lock held (the RLock makes the
        # re-acquisition free when a worker triggered the readiness).
        with self._cond:
            self._cond.notify_all()

    def _acquire_work(self, wid: int) -> Any:
        """Take the next unit of work for seat ``wid``; None when idle.

        Called under the lock. The base implementation pops the ready
        queues through the dispatch policy and accounts the dispatch;
        back-ends with seat-local backlogs override this to also drain
        their own deque or steal from a straggling seat's.
        """
        task = self.policy.select(
            self.runtime.natural_queue, self.runtime.speculative_queue
        )
        if task is not None:
            self._begin_dispatch(wid, task)
        return task

    def _dispatch_cycle(self, wid: int, task: Any) -> None:
        """Run one acquired unit of work to completion (lock not held).

        The base cycle is one blocking :meth:`_execute` paired with one
        :meth:`_finish_dispatch`. Streaming back-ends override this to
        complete several tasks per cycle as their replies land.
        """
        failure: BaseException | None = None
        t_exec0 = self._clock()
        if task.abort_requested:
            outputs: dict[str, Any] = {}
        else:
            try:
                outputs = self._execute(wid, task)
            except Exception as exc:
                failure = exc
                outputs = {}
        self._finish_dispatch(wid, task, outputs, failure,
                              wall_us=self._clock() - t_exec0)

    def _worker_loop(self, wid: int) -> None:
        while True:
            with self._cond:
                work = None
                while not self._stop:
                    work = self._acquire_work(wid)
                    if work is not None:
                        break
                    self._cond.wait(self.POLL_S)
                if self._stop and work is None:
                    return
            # Compute outside the lock so task bodies overlap.
            self._dispatch_cycle(wid, work)

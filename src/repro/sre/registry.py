"""Executor registry — one name-to-factory table for every back-end.

The four executors (simulated, threaded, process-pool, distributed) share
one runtime contract but historically were constructed by hand at every
call site
(runner, CLI, benches), each site hard-coding the name→class mapping and
its own error message. The registry centralises that: back-end modules
self-register at import time, and :func:`make_executor` is the single
constructor every harness routes through.

The table maps a *name* to a factory ``(runtime, **opts) -> executor``.
Factories may massage options (the simulated back-end resolves a platform
name string to a :class:`~repro.platforms.base.Platform`), but must accept
the same core vocabulary: ``policy``, ``workers`` where meaningful.

Registering is open: applications can add their own back-ends::

    from repro.sre.registry import register_executor
    register_executor("mybackend", MyExecutor)

and ``repro run --executor mybackend`` works, as does
``RunConfig(executor="mybackend")``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchedulingError

__all__ = ["EXECUTORS", "register_executor", "make_executor", "executor_names"]

#: Global name → factory table. Populated by executor modules at import
#: time (see the ``register_executor`` calls at the bottom of
#: executor_sim/executor_threads/executor_procs) and open to applications.
EXECUTORS: dict[str, Callable[..., Any]] = {}


def register_executor(name: str, factory: Callable[..., Any]) -> None:
    """Register (or replace) an executor factory under ``name``.

    Args:
        name: the key users pass to :func:`make_executor`, ``repro run
            --executor`` and ``RunConfig.executor``.
        factory: callable ``(runtime, **opts) -> executor``. Usually the
            executor class itself.
    """
    if not name or not isinstance(name, str):
        raise SchedulingError("executor name must be a non-empty string")
    EXECUTORS[name] = factory


def _load_builtins() -> None:
    # Import for side effects: the built-in back-ends self-register when
    # their modules load, but a caller may reach the registry before any
    # executor module was imported (e.g. straight from repro.sre.registry).
    from repro.sre import (executor_dist, executor_procs,  # noqa: F401
                           executor_sim, executor_threads)


def executor_names() -> tuple[str, ...]:
    """Registered back-end names, sorted (for listings and errors)."""
    _load_builtins()
    return tuple(sorted(EXECUTORS))


def make_executor(name: str, runtime: Any, **opts: Any) -> Any:
    """Construct the executor registered under ``name``.

    Args:
        name: registered back-end name (``"sim"``, ``"threads"``,
            ``"procs"``, or anything applications registered).
        runtime: the :class:`~repro.sre.runtime.Runtime` to drive.
        **opts: forwarded to the factory (``policy=``, ``workers=``,
            back-end specifics like ``payload_budget=`` or ``platform=``).

    Raises:
        SchedulingError: unknown name; the message lists the choices.
    """
    _load_builtins()
    try:
        factory = EXECUTORS[name]
    except KeyError:
        choices = ", ".join(executor_names()) or "<none registered>"
        raise SchedulingError(
            f"unknown executor {name!r}; registered back-ends: {choices}"
        ) from None
    return factory(runtime, **opts)

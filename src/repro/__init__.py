"""repro — Tolerant Value Speculation in Coarse-Grain Streaming Computations.

A from-scratch Python reproduction of Azuelos, Keidar & Zaks (IPPS 2011):
a streaming runtime (SRE) with coarse-grain, tolerance-based value
speculation, evaluated on a parallel speculative Huffman encoder.

Quickstart::

    from repro import RunConfig, run_huffman

    report = run_huffman(config=RunConfig(workload="txt", policy="balanced",
                                          n_blocks=256))
    print(report.summary.avg_latency_us)

See DESIGN.md for the system map and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core import (
    EveryK,
    FullVerification,
    Optimistic,
    RelativeTolerance,
    SpeculationManager,
    SpeculationSpec,
    WaitBuffer,
)
from repro.huffman import HuffmanConfig, HuffmanPipeline
from repro.platforms import CellPlatform, X86Platform, get_platform
from repro.iomodels import DiskModel, SocketModel
from repro.sre import ProcessExecutor, Runtime, SimulatedExecutor, Task, ThreadedExecutor
from repro.experiments.runner import RunConfig, RunReport, run_huffman

__version__ = "1.0.0"

__all__ = [
    "EveryK",
    "FullVerification",
    "Optimistic",
    "RelativeTolerance",
    "SpeculationManager",
    "SpeculationSpec",
    "WaitBuffer",
    "HuffmanConfig",
    "HuffmanPipeline",
    "X86Platform",
    "CellPlatform",
    "get_platform",
    "DiskModel",
    "SocketModel",
    "Runtime",
    "SimulatedExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "Task",
    "RunReport",
    "RunConfig",
    "run_huffman",
    "__version__",
]

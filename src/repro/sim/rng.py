"""Seeded random-number helpers.

Every stochastic component (workload generators, jittered arrival processes)
takes an explicit ``numpy.random.Generator``. These helpers centralise
construction so a single experiment seed deterministically fans out to
independent streams per component — re-running any experiment with the same
seed reproduces it exactly, including every rollback.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, pass through an existing Generator.

    ``None`` yields a fresh OS-seeded generator; experiments always pass an
    int so results are reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one experiment seed."""
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]

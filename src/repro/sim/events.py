"""Event objects and the time-ordered event queue.

Events are ordered by ``(time, priority, seq)``. The monotonically increasing
sequence number makes ordering total and deterministic: two events scheduled
for the same instant fire in scheduling order, which is what makes whole
simulation runs bit-for-bit reproducible.

Cancellation is lazy: :meth:`EventQueue.cancel` only flags the event, and the
heap discards cancelled entries as they surface. This is O(1) per cancel and
keeps the heap invariant intact, at the cost of dead entries lingering until
popped — an explicitly accepted trade-off (cancellations are rare relative to
event volume in our workloads).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time at which the event fires.
        priority: tie-break within an instant; lower fires first.
        seq: global scheduling sequence number (final tie-break).
        fn: zero-argument callable invoked when the event fires.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the queue skips it when it surfaces."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} prio={self.priority} seq={self.seq}{state}>"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``fn`` at absolute ``time`` and return its event handle."""
        if time != time:  # NaN guard
            raise SimulationError("event time may not be NaN")
        ev = Event(time, priority, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired or was cancelled)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        self._live -= 1
        return ev

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def drain(self) -> Iterator[Event]:
        """Yield remaining live events in order, consuming the queue."""
        while self:
            yield self.pop()

"""The simulator clock and run loop.

:class:`Simulator` advances virtual time by firing events in deterministic
order. Callbacks may schedule further events (including at the current
instant); time never moves backwards.

The kernel is callback-based rather than coroutine-based. The SRE layers
above it are naturally event-driven (task ready, worker free, block arrived),
so a process abstraction would add machinery without adding clarity — see
DESIGN.md §3.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event simulator.

    Time is a float in *microseconds* by convention throughout this project
    (matching the paper's latency plots), though the kernel itself is
    unit-agnostic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for tests and diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, fn, priority)

    def schedule_at(self, time: float, fn: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``fn`` at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time!r}, now is {self._now!r}")
        return self._queue.push(time, fn, priority)

    def call_soon(self, fn: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``fn`` at the current instant, after already-queued events."""
        return self._queue.push(self._now, fn, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event. Returns False when no events remain."""
        if not self._queue:
            return False
        ev = self._queue.pop()
        if ev.time < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event queue returned an event from the past")
        self._now = ev.time
        self._events_fired += 1
        ev.fn()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time when the loop stopped. ``until`` is
        inclusive: events scheduled exactly at ``until`` do fire.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        return self._now

"""Discrete-event simulation (DES) kernel.

The kernel is deliberately small: a time-ordered event heap
(:mod:`repro.sim.events`), a simulator clock and run loop
(:mod:`repro.sim.kernel`), counted resources (:mod:`repro.sim.resources`),
and structured trace recording (:mod:`repro.sim.trace`).

The SRE's simulated executor (:mod:`repro.sre.executor_sim`) is built on this
kernel; everything above it (tasks, speculation, Huffman) is agnostic to
whether time is simulated or wall-clock.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, ResourceRequest
from repro.sim.rng import make_rng, spawn_rngs
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Resource",
    "ResourceRequest",
    "TraceRecord",
    "TraceRecorder",
    "make_rng",
    "spawn_rngs",
]

"""Counted resources for the DES kernel.

A :class:`Resource` models a pool of interchangeable units (e.g. CPU cores)
with a FIFO wait queue. The SRE's simulated executor uses its own
worker-level dispatch (it needs policy-driven, non-FIFO selection), but the
generic resource is used by I/O models and is handy in tests and examples.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.kernel import Simulator

__all__ = ["Resource", "ResourceRequest"]


class ResourceRequest:
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "fn", "granted", "cancelled")

    def __init__(self, resource: "Resource", fn: Callable[[], Any]):
        self.resource = resource
        self.fn = fn
        self.granted = False
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw an un-granted request (no-op once granted)."""
        if not self.granted:
            self.cancelled = True


class Resource:
    """A counted resource with FIFO granting semantics.

    ``acquire`` either grants immediately (scheduling the callback at the
    current instant, preserving event ordering) or queues the request.
    ``release`` hands the freed unit to the oldest live waiter.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        return sum(1 for w in self._waiters if not w.cancelled)

    def acquire(self, fn: Callable[[], Any]) -> ResourceRequest:
        """Request a unit; ``fn`` runs (as an event) when one is granted."""
        req = ResourceRequest(self, fn)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiters.append(req)
        return req

    def release(self) -> None:
        """Return one unit to the pool, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        while self._waiters:
            req = self._waiters.popleft()
            if req.cancelled:
                continue
            self._grant(req)
            break

    def _grant(self, req: ResourceRequest) -> None:
        self._in_use += 1
        req.granted = True
        self.sim.call_soon(req.fn)

"""Structured trace recording for simulation runs.

Traces are the raw material for every metric the experiment harness reports:
per-block latency, rollback counts, worker utilisation. Records are plain
tuples (cheap to append in the hot path) exposed through typed accessors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: simulated time of the event.
        kind: event category, e.g. ``"task_start"``, ``"rollback"``.
        subject: identifier of the entity involved (task name, block id...).
        detail: free-form payload mapping.
    """

    time: float
    kind: str
    subject: str
    detail: dict[str, Any]


class TraceRecorder:
    """Append-only, filterable event trace.

    Recording can be disabled wholesale (``enabled=False``) or narrowed to a
    set of kinds, so full experiment sweeps don't pay for traces they never
    read.
    """

    def __init__(self, enabled: bool = True, kinds: Iterable[str] | None = None):
        self.enabled = enabled
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, subject: str, **detail: Any) -> None:
        """Append a record (no-op when disabled or kind filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._records.append(TraceRecord(time, kind, subject, detail))

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self._records if r.kind == kind]

    def kinds(self) -> set[str]:
        """Set of kinds present in the trace."""
        return {r.kind for r in self._records}

    def count(self, kind: str) -> int:
        """Number of records of one kind."""
        return sum(1 for r in self._records if r.kind == kind)

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    def last(self, kind: str) -> TraceRecord | None:
        """Most recent record of a kind, or None."""
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

"""Client library for the `repro serve` daemon.

:class:`ServeClient` wraps one socket connection with the framed-JSON
protocol (:mod:`repro.serve.wire`) behind plain method calls::

    with ServeClient(port=port) as client:
        job = client.submit({"app": "kmeans", "n_blocks": 24},
                            tenant="alice")
        report = client.result(job, wait=True)
        print(report["output_sha256"])

A rejected submission raises :class:`JobRejected` carrying the
admission ``reason`` (``circuit_open`` / ``tenant_busy`` /
``tenant_bytes`` / ``queue_full`` / ``bad_config``) so callers can
implement backoff-and-retry against backpressure without string
matching. The connection is serialised by a lock — a ServeClient is
safe to share across threads, with requests interleaving whole frames.

Every frame carries a W3C-style ``traceparent`` header; :meth:`submit`
mints a fresh trace per job, so the daemon's stage spans, flight-recorder
events and worker-side ``worker_exec`` events all share that job's
trace id (:mod:`repro.obs.spans`). Fetch the assembled span tree with
:meth:`trace`.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ExperimentError
from repro.obs.spans import TraceContext
from repro.serve.wire import TRACEPARENT_KEY, encode_blob, recv_frame, \
    send_frame

__all__ = ["JobRejected", "ServeClient", "ServeError"]


class ServeError(ExperimentError):
    """The daemon replied ``ok: false`` (and it wasn't an admission
    rejection), or the connection failed."""


class JobRejected(ServeError):
    """Admission control refused the submission."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"submission rejected ({reason}): {detail}")
        self.reason = reason


class ServeClient:
    """One connection to a serve daemon; context-manager friendly."""

    def __init__(self, host: str = "127.0.0.1", *, port: int,
                 timeout_s: float = 120.0) -> None:
        #: per-call reply deadline; a daemon that stops replying surfaces
        #: as a typed ServeError instead of wedging the caller (and every
        #: other thread sharing this client) in recv_frame forever.
        self.timeout_s = timeout_s
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._lock = threading.Lock()
        #: active trace context; re-minted per submit so each job gets
        #: its own trace id. Follow-up ops (block/result/...) reuse the
        #: last submit's context.
        self._trace = TraceContext.mint()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    def _call(self, req: dict) -> dict:
        with self._lock:
            req.setdefault(TRACEPARENT_KEY, self._trace.to_traceparent())
            try:
                send_frame(self._sock, req)
                reply = recv_frame(self._sock)
            except TimeoutError:  # socket.timeout on the unbounded recv
                raise ServeError(
                    f"daemon timed out (no reply to {req.get('op')!r} "
                    f"within {self.timeout_s}s)") from None
        if reply is None:
            raise ServeError("daemon closed the connection")
        return reply

    def _checked(self, req: dict) -> dict:
        reply = self._call(req)
        if not reply.get("ok"):
            reason = reply.get("reason")
            detail = str(reply.get("error", "unspecified"))
            if reason in ("circuit_open", "tenant_busy", "tenant_bytes",
                          "queue_full", "bad_config"):
                raise JobRejected(reason, detail)
            raise ServeError(detail)
        return reply

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._checked({"op": "ping"})

    def submit(self, config: dict, *, tenant: str = "default",
               workload: bytes | None = None) -> str:
        """Submit one job; returns its ``job_id``.

        ``config`` is a plain dict of :class:`RunConfig` keywords plus
        ``app``; ``workload`` ships custom input bytes (base64 on the
        wire) instead of a named synthetic workload.
        """
        config = dict(config)
        if workload is not None:
            config["workload_b64"] = encode_blob(workload)
        self._trace = TraceContext.mint()  # one trace per job
        reply = self._checked({"op": "submit", "tenant": tenant,
                               "config": config})
        return reply["job_id"]

    def send_block(self, job_id: str, index: int, data: bytes) -> None:
        """Stream one block to an ``io="live"`` job."""
        self._checked({"op": "block", "job_id": job_id, "index": index,
                       "data_b64": encode_blob(data)})

    def close_stream(self, job_id: str) -> None:
        self._checked({"op": "close_stream", "job_id": job_id})

    def status(self, job_id: str) -> dict:
        return self._checked({"op": "status", "job_id": job_id})

    def result(self, job_id: str, *, wait: bool = True,
               timeout_s: float = 120.0) -> dict:
        """The job's report summary; raises ServeError on a failed job.

        Returns the ``report`` dict (label, outcome, ``output_sha256``,
        latency stats, extras) for a done job. ``wait=False`` raises if
        the job has not finished.
        """
        reply = self._checked({"op": "result", "job_id": job_id,
                               "wait": wait, "timeout_s": timeout_s})
        if reply.get("state") == "failed":
            raise ServeError(
                f"{job_id} failed: {reply.get('error', 'unknown error')}")
        if "report" not in reply:
            raise ServeError(f"{job_id} is still {reply.get('state')}; "
                             "pass wait=True or retry later")
        return reply["report"]

    def jobs(self) -> list[dict]:
        return self._checked({"op": "jobs"})["jobs"]

    def trace(self, job_id: str) -> dict:
        """A job's assembled trace: ``{"trace_id", "state", "spans"}``.

        ``spans`` is a flat list of span dicts (assemble a tree with
        :func:`repro.obs.spans.span_tree`); for a running job the open
        stage spans appear with ``t1_us`` null.
        """
        reply = self._checked({"op": "trace", "job_id": job_id})
        return {k: v for k, v in reply.items() if k != "ok"}

    def stats(self) -> dict:
        reply = self._checked({"op": "stats"})
        return {k: v for k, v in reply.items() if k != "ok"}

    def shutdown(self) -> None:
        """Ask the daemon to stop (acked before it goes down)."""
        self._checked({"op": "shutdown"})

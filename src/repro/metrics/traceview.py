"""Trace export and visualisation.

Converts a run's :class:`~repro.sim.trace.TraceRecorder` into

* **Chrome trace-event JSON** (``chrome://tracing`` / Perfetto): one lane
  per task kind, complete events spanning start→done, instant events for
  speculation milestones (speculate / check / rollback / commit);
* an **ASCII Gantt strip** for terminal inspection of who ran when.

Both operate purely on trace records, so they work identically for every
executor back-end — ``sim`` (virtual µs), ``threads`` and ``procs`` (wall
µs): pass ``trace=True`` to ``run_huffman`` (or ``--trace-out`` /
``repro trace`` on the CLI) and feed the resulting recorder here.

:func:`spans_to_chrome_trace` does the same for a served job's
*distributed trace* (the flat span list the ``trace`` op returns, see
:mod:`repro.obs.spans`): daemon stage spans render in one process lane,
worker-clock ``worker_exec`` leaves in another — their monotonic clocks
share no epoch, so mixing them in one lane would draw nonsense overlaps.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.sim.trace import TraceRecorder

__all__ = ["to_chrome_trace", "spans_to_chrome_trace", "ascii_gantt"]

_INSTANT_KINDS = ("speculate", "check_pass", "check_fail", "rollback",
                  "commit", "recompute", "undo")


def _task_spans(trace: TraceRecorder):
    """(name, kind, speculative, start, end, aborted, worker) per task.

    A ``task_done`` / ``task_abort`` with no matching ``task_start`` yields
    a zero-width span at the end time instead of being dropped: the
    process back-end reaps abort-flagged tasks that never began (the
    worker skipped the payload), and a trace narrowed with
    ``TraceRecorder(kinds=...)`` may simply not include starts. Losing
    those tasks silently made procs traces undercount aborted work.
    """
    starts: dict[str, tuple[float, str, bool, object]] = {}
    for rec in trace:
        if rec.kind == "task_start":
            starts[rec.subject] = (
                rec.time,
                rec.detail.get("task_kind", "task"),
                bool(rec.detail.get("speculative")),
                rec.detail.get("worker"),
            )
        elif rec.kind in ("task_done", "task_abort"):
            if rec.subject in starts:
                t0, kind, spec, worker = starts.pop(rec.subject)
            else:
                t0 = rec.time
                kind = rec.detail.get("task_kind", "task")
                spec = bool(rec.detail.get("speculative"))
                worker = rec.detail.get("worker")
            yield (rec.subject, kind, spec, t0, rec.time,
                   rec.kind == "task_abort", worker)


def to_chrome_trace(trace: TraceRecorder) -> str:
    """Serialise a trace to Chrome trace-event JSON (a string)."""
    events: list[dict] = []
    for name, kind, spec, t0, t1, aborted, worker in _task_spans(trace):
        args = {"speculative": spec, "aborted": aborted}
        if worker is not None:
            args["worker"] = worker
        events.append({
            "name": name,
            "cat": ("speculative," if spec else "") + kind,
            "ph": "X",
            "ts": t0,
            "dur": max(t1 - t0, 0.001),
            "pid": 1,
            "tid": kind,
            "args": args,
        })
    for rec in trace:
        if rec.kind in _INSTANT_KINDS:
            events.append({
                "name": f"{rec.kind}:{rec.subject}",
                "cat": "speculation",
                "ph": "i",
                "ts": rec.time,
                "pid": 1,
                "tid": "speculation",
                "s": "g",
                "args": dict(rec.detail),
            })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


#: span attrs that become Chrome ``args`` when present.
_SPAN_ARG_KEYS = ("tenant", "outcome", "state", "status", "worker", "task",
                  "job", "trace_id", "span_id", "parent_id")


def spans_to_chrome_trace(spans: list[dict[str, Any]]) -> str:
    """Serialise a served job's span list to Chrome trace-event JSON.

    Daemon-clock spans land in pid 1 with one thread lane per span name
    (job / admission / queue / lane_lease / execute / stream / result);
    worker-clock leaves land in pid 2, one lane per worker. Open spans
    (``t1_us`` null — a still-running job) render as zero-width markers
    at their start time rather than being dropped.
    """
    events: list[dict] = []
    for span in spans:
        t0 = float(span.get("t0_us") or 0.0)
        t1 = span.get("t1_us")
        dur = max(float(t1) - t0, 0.001) if t1 is not None else 0.001
        worker_clock = span.get("clock") == "worker"
        args = {k: span[k] for k in _SPAN_ARG_KEYS
                if span.get(k) is not None}
        if t1 is None:
            args["open"] = True
        events.append({
            "name": str(span.get("name", "span")),
            "cat": "worker" if worker_clock else "serve",
            "ph": "X",
            "ts": t0,
            "dur": dur,
            "pid": 2 if worker_clock else 1,
            "tid": (f"worker-{span.get('worker', '?')}" if worker_clock
                    else str(span.get("name", "span"))),
            "args": args,
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def ascii_gantt(
    trace: TraceRecorder,
    *,
    width: int = 72,
    kinds: Iterable[str] | None = None,
) -> str:
    """One text lane per task kind; '#' marks busy time, '!' aborted work.

    Lanes aggregate all tasks of a kind (the paper's pipelines run hundreds
    of tasks per kind — per-task lanes would be unreadable); a column is
    busy if *any* task of that kind ran during it.
    """
    spans = list(_task_spans(trace))
    if not spans:
        return "(empty trace)"
    t_end = max(t1 for *_, t1, _, _ in spans)
    t_end = max(t_end, 1e-9)
    wanted = set(kinds) if kinds is not None else None
    lanes: dict[str, list[str]] = {}
    for _name, kind, _spec, t0, t1, aborted, _worker in spans:
        if wanted is not None and kind not in wanted:
            continue
        lane = lanes.setdefault(kind, [" "] * width)
        c0 = min(width - 1, int(t0 / t_end * width))
        c1 = min(width - 1, int(t1 / t_end * width))
        mark = "!" if aborted else "#"
        for c in range(c0, c1 + 1):
            if lane[c] != "!":  # aborted work stays visible
                lane[c] = mark
    label_w = max(len(k) for k in lanes) if lanes else 0
    lines = [f"0 {'·' * (width - 12)} {t_end:,.0f} µs"]
    for kind in sorted(lanes):
        lines.append(f"{kind.rjust(label_w)} |{''.join(lanes[kind])}|")
    return "\n".join(lines)

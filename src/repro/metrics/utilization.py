"""Worker-time and queue-depth analysis from run traces.

Answers the resource-management questions of §II-B quantitatively: where
did worker time go (per task kind, split natural vs speculative, useful vs
wasted), and how deep did the ready queues run — directly from the trace,
for simulated and threaded runs alike.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.traceview import _task_spans
from repro.sim.trace import TraceRecorder

__all__ = ["KindUsage", "worker_time_breakdown", "ready_depth_series"]


@dataclass
class KindUsage:
    """Busy time attributed to one task kind."""

    kind: str
    busy_us: float = 0.0
    speculative_us: float = 0.0
    wasted_us: float = 0.0  # spans ending in an abort
    tasks: int = 0

    def row(self) -> list[str]:
        return [
            self.kind,
            str(self.tasks),
            f"{self.busy_us:,.0f}",
            f"{self.speculative_us:,.0f}",
            f"{self.wasted_us:,.0f}",
        ]

    HEADER = ["kind", "tasks", "busy (µs)", "speculative (µs)", "wasted (µs)"]


def worker_time_breakdown(trace: TraceRecorder) -> dict[str, KindUsage]:
    """Aggregate executed spans per kind.

    "Wasted" counts spans whose task ended aborted — worker time burnt on
    results that were later destroyed (the cost side of speculation).

    Zero-width aborted spans (tasks reaped before they ever started) are
    excluded: they consumed no worker time, so counting them would inflate
    the per-kind task counts this table divides by.
    """
    usage: dict[str, KindUsage] = {}
    for _name, kind, spec, t0, t1, aborted, _worker in _task_spans(trace):
        if aborted and t1 <= t0:
            continue  # never ran — no worker time to attribute
        u = usage.setdefault(kind, KindUsage(kind))
        span = max(t1 - t0, 0.0)
        u.busy_us += span
        u.tasks += 1
        if spec:
            u.speculative_us += span
        if aborted:
            u.wasted_us += span
    return usage


def ready_depth_series(
    trace: TraceRecorder, speculative: bool | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Ready-queue depth over time as step series ``(times, depths)``.

    ``speculative`` filters to one queue class; None aggregates both.
    Depth increases on ``task_ready`` and decreases on ``task_start``
    (dispatch) or on an abort of a task that never started.
    """
    started: set[str] = set()
    for rec in trace:
        if rec.kind == "task_start":
            started.add(rec.subject)
    deltas: list[tuple[float, int]] = []
    for rec in trace:
        if speculative is not None and rec.detail.get("speculative") != speculative:
            if rec.kind in ("task_ready", "task_start", "task_abort"):
                continue
        if rec.kind == "task_ready":
            deltas.append((rec.time, +1))
        elif rec.kind == "task_start":
            deltas.append((rec.time, -1))
        elif rec.kind == "task_abort" and rec.subject not in started:
            # reaped straight out of the queue
            deltas.append((rec.time, -1))
    if not deltas:
        return np.zeros(0), np.zeros(0)
    deltas.sort(key=lambda d: d[0])
    times = np.array([t for t, _ in deltas])
    depths = np.cumsum([d for _, d in deltas])
    return times, depths

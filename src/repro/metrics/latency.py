"""Per-block latency collection.

Latency of block *i* = (completion of *i*'s authoritative encode) − (arrival
of *i*). A speculative encode is authoritative only if its version was
eventually committed; rolled-back encodes are real work that happened, but
the block's processing is complete only once a *valid* encoding exists —
this is how the paper's rollback plateaus (Fig. 7b) appear in the curves.

Commit latency (completion measured when the result clears the side-effect
barrier) is collected alongside for the buffering ablation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ExperimentError

__all__ = ["LatencyCollector"]


class LatencyCollector:
    """Arrival / encode / commit records for one run."""

    def __init__(self) -> None:
        self._arrivals: dict[int, float] = {}
        self._encodes: dict[int, list[tuple[float, int | None]]] = {}
        self._commits: dict[int, float] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_arrival(self, block: int, time: float) -> None:
        if block in self._arrivals:
            raise ExperimentError(f"block {block} arrived twice")
        self._arrivals[block] = time

    def record_encode(self, block: int, time: float, version: int | None) -> None:
        """An encode of ``block`` completed under speculation ``version``
        (None = the natural, always-valid path)."""
        self._encodes.setdefault(block, []).append((time, version))

    def record_commit(self, block: int, time: float) -> None:
        """Block ``block``'s result cleared the side-effect barrier."""
        self._commits[block] = time

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self._arrivals)

    def arrivals(self) -> np.ndarray:
        """Arrival times indexed by block id (dense, block order)."""
        return self._series(self._arrivals)

    def arrival_time(self, block: int) -> float:
        """Arrival time of one block (raises if it never arrived)."""
        if block not in self._arrivals:
            raise ExperimentError(f"block {block} has no recorded arrival")
        return self._arrivals[block]

    def encode_attempts(self, block: int) -> list[tuple[float, int | None]]:
        """All encodes of one block, valid or not (rollback diagnostics)."""
        return list(self._encodes.get(block, ()))

    def wasted_encodes(self, valid_versions: Iterable[int | None]) -> int:
        """Number of encode completions that were later rolled back."""
        valid = set(valid_versions)
        return sum(
            1
            for attempts in self._encodes.values()
            for (_, v) in attempts
            if v not in valid
        )

    def completions(self, valid_versions: Iterable[int | None]) -> np.ndarray:
        """Authoritative completion time per block (block order).

        Each block must have exactly one valid encode — more means two
        authoritative paths raced (a bug), none means the run lost a block.
        """
        valid = set(valid_versions)
        out = np.empty(len(self._arrivals), dtype=np.float64)
        for i, block in enumerate(sorted(self._arrivals)):
            hits = [t for (t, v) in self._encodes.get(block, ()) if v in valid]
            if len(hits) != 1:
                raise ExperimentError(
                    f"block {block} has {len(hits)} valid encodes (want exactly 1)"
                )
            out[i] = hits[0]
        return out

    def latencies(self, valid_versions: Iterable[int | None]) -> np.ndarray:
        """Per-block latency, in block order (the paper's y-axis)."""
        return self.completions(valid_versions) - self.arrivals()

    def commit_latencies(self) -> np.ndarray:
        """Latency to the commit point (barrier clearance), block order."""
        arr = self.arrivals()
        out = np.empty_like(arr)
        for i, block in enumerate(sorted(self._arrivals)):
            if block not in self._commits:
                raise ExperimentError(f"block {block} never committed")
            out[i] = self._commits[block]
        return out - arr

    def _series(self, mapping: dict[int, float]) -> np.ndarray:
        return np.array([mapping[b] for b in sorted(mapping)], dtype=np.float64)

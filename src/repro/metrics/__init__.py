"""Metrics: per-block latency collection and experiment reporting.

The paper's main evaluation criterion is *per-block latency*: the time a
data block's processing completes minus the time it arrived, discounting
data transfer (§V-A). :class:`~repro.metrics.latency.LatencyCollector`
gathers arrivals, encode completions (tagged with the speculation version
that produced them) and commit times; only encodes from *valid* versions —
the committed speculative version or the natural path — count.
"""

from repro.metrics.latency import LatencyCollector
from repro.metrics.summary import RunSummary, summarize_run
from repro.metrics.report import ascii_chart, render_table
from repro.metrics.traceview import ascii_gantt, to_chrome_trace

__all__ = [
    "LatencyCollector",
    "RunSummary",
    "summarize_run",
    "ascii_chart",
    "render_table",
    "ascii_gantt",
    "to_chrome_trace",
]

"""Plain-text rendering: tables and ASCII charts for experiment output.

The benchmark harness prints the same rows/series the paper plots; these
helpers keep that output readable in a terminal and diff-able in CI logs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["render_table", "ascii_chart"]


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with a header rule."""
    cols = len(header)
    for r in rows:
        if len(r) != cols:
            raise ValueError(f"row {r!r} has {len(r)} cells, expected {cols}")
    widths = [
        max(len(str(header[c])), *(len(str(r[c])) for r in rows)) if rows else len(str(header[c]))
        for c in range(cols)
    ]
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "element",
    y_label: str = "latency (µs)",
) -> str:
    """Down-sampled multi-series line chart in ASCII.

    Each series is plotted over its index (the paper's "Element" axis);
    series are marked with distinct glyphs. Good enough to eyeball curve
    shapes — who is above whom, where plateaus sit — in a terminal log.
    """
    if not series:
        return "(no data)"
    glyphs = "*o+x#@%&"
    y_max = max(float(np.max(v)) for v in series.values() if len(v))
    y_min = min(0.0, min(float(np.min(v)) for v in series.values() if len(v)))
    if y_max <= y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            continue
        g = glyphs[si % len(glyphs)]
        xs = np.linspace(0, v.size - 1, num=width).astype(np.int64)
        for col, idx in enumerate(xs):
            frac = (v[idx] - y_min) / (y_max - y_min)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = g
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:,.0f} {y_label}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"> {x_label}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)

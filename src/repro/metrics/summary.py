"""Run summaries — the numbers every experiment table reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RunSummary", "summarize_run"]


@dataclass
class RunSummary:
    """Scalar digest of one pipeline run."""

    label: str
    n_blocks: int
    outcome: str
    avg_latency_us: float
    max_latency_us: float
    p95_latency_us: float
    completion_time_us: float
    compression_ratio: float
    rollbacks: int
    wasted_encodes: int
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> list[str]:
        """Formatted cells for table rendering."""
        return [
            self.label,
            str(self.n_blocks),
            self.outcome,
            f"{self.avg_latency_us:,.0f}",
            f"{self.max_latency_us:,.0f}",
            f"{self.completion_time_us:,.0f}",
            f"{self.compression_ratio:.3f}",
            str(self.rollbacks),
            str(self.wasted_encodes),
        ]

    HEADER = [
        "run",
        "blocks",
        "outcome",
        "avg lat (µs)",
        "max lat (µs)",
        "runtime (µs)",
        "ratio",
        "rollbacks",
        "wasted",
    ]


def summarize_run(label: str, result) -> RunSummary:
    """Digest a :class:`~repro.huffman.pipeline.PipelineResult`."""
    latencies = result.latencies
    return RunSummary(
        label=label,
        n_blocks=result.n_blocks,
        outcome=result.outcome,
        avg_latency_us=float(latencies.mean()),
        max_latency_us=float(latencies.max()),
        p95_latency_us=float(np.percentile(latencies, 95)),
        completion_time_us=float(result.completion_time),
        compression_ratio=result.compression_ratio,
        rollbacks=int(result.spec_stats.get("rollbacks", 0)),
        wasted_encodes=result.wasted_encodes,
        extra=dict(result.spec_stats),
    )

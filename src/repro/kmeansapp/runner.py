"""One-call runner for the k-means application experiments.

Registered as the ``"kmeans"`` job kind (see
:mod:`repro.experiments.jobs`): takes the unified
:class:`~repro.experiments.config.RunConfig` and returns the unified
:class:`~repro.experiments.jobs.RunReport`. KMeans-specific scalars
(``inertia``, ``labels_ok``, ``rollbacks``, ``speculations``) ride in
``report.extras``.
"""

from __future__ import annotations

import hashlib

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import AppResult, JobResources, RunReport, register_job
from repro.iomodels import ArrivalModel, DiskModel, SocketModel
from repro.kmeansapp.kmeans import KMeansModel, gaussian_mixture_stream
from repro.kmeansapp.pipeline import KMeansConfig, KMeansPipeline
from repro.obs.anomaly import scan_run
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.platforms import get_platform
from repro.sim.rng import make_rng
from repro.sim.trace import TraceRecorder
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

__all__ = ["run_kmeans_experiment"]


def _resolve_io(io) -> ArrivalModel:
    if isinstance(io, ArrivalModel):
        return io
    name = str(io).lower()
    if name == "disk":
        return DiskModel(per_block_us=60.0)
    if name == "socket":
        return SocketModel()
    raise ExperimentError(
        f"unknown io model {io!r} for the kmeans app; choose 'disk' or "
        "'socket' (io='live' streams bytes — huffman only)")


def run_kmeans_experiment(
    config: RunConfig,
    *,
    metrics: MetricsRegistry | None = None,
    decisions: object | None = None,
    resources: JobResources | None = None,
) -> RunReport:
    """Run streaming k-means with centroid speculation.

    ``drift_blocks > 0`` shifts the mixture's means over the first blocks
    (an early transient): speculation before the drift settles rolls back.
    Use ``RunConfig.for_app("kmeans", ...)`` to get the app's conventional
    geometry defaults.
    """
    if not isinstance(config, RunConfig):
        raise ExperimentError(
            f"config must be a RunConfig, got {type(config).__name__} — "
            "bare keywords are no longer accepted")
    cfg = config
    if cfg.app != "kmeans":
        raise ExperimentError(
            f"run_kmeans_experiment got config.app={cfg.app!r}; dispatch "
            "other apps through repro.experiments.jobs.run_job")
    if cfg.executor != "sim":
        raise ExperimentError(
            "the kmeans job runs on the simulated executor only (its task "
            "closures are not picklable); use executor='sim'")
    n_blocks = cfg.n_blocks if cfg.n_blocks is not None else 48
    rng = make_rng(cfg.seed)
    model = KMeansModel(n_clusters=cfg.n_clusters, dim=cfg.dim)
    kconfig = KMeansConfig(
        speculative=cfg.speculative, step=cfg.step,
        verification=cfg.verification, verify_k=cfg.verify_k,
        tolerance=cfg.tolerance,
    )
    plat = get_platform(cfg.platform) if isinstance(cfg.platform, str) else cfg.platform
    io_model = _resolve_io(cfg.io)
    stream = gaussian_mixture_stream(
        n_blocks, cfg.block_points, n_clusters=cfg.n_clusters, dim=cfg.dim,
        drift_blocks=cfg.drift_blocks, seed=rng,
    )

    registry = metrics if metrics is not None else MetricsRegistry()
    events = EventLog(capacity=cfg.events_capacity, path=cfg.events_out,
                      enabled=cfg.events,
                      meta={"app": "kmeans", "run_config": cfg.to_dict()})
    if resources is not None and resources.trace is not None:
        # Served job: every event of this run joins the submit's trace.
        events.set_trace_context(resources.trace)
    runtime = Runtime(
        trace=TraceRecorder(enabled=cfg.trace),
        metrics=registry,
        events=events,
        depth_first=cfg.depth_first,
        control_first=cfg.control_first,
        decisions=decisions,
    )
    try:
        executor = SimulatedExecutor(runtime, plat, policy=cfg.policy,
                                     workers=cfg.workers)
        pipeline = KMeansPipeline(runtime, model, kconfig, n_blocks)
        arrivals = io_model.arrival_times(n_blocks, rng)
        for index, when in enumerate(arrivals):
            executor.sim.schedule_at(
                float(when), lambda i=index: pipeline.feed_block(i, stream[i]))
        end = executor.run()

        valid = pipeline.valid_versions()
        latencies = pipeline.collector.latencies(valid)
        ok = pipeline.verify_labels()
        if not ok:
            raise ExperimentError("k-means labels failed verification")
        stats = pipeline.manager.stats if pipeline.manager else None
        # Byte-identity oracle: committed labels + centroids.
        output_sha = hashlib.sha256(
            pipeline.labels().tobytes()
            + pipeline.committed_centroids.tobytes()).hexdigest()
        run_warnings = scan_run(events, registry)
        if cfg.events:
            events.emit(
                "run_result",
                outcome=("non_speculative" if pipeline.manager is None
                         else pipeline.manager.outcome),
                output_sha256=output_sha,
                roundtrip_ok=ok,
            )
    finally:
        events.close()

    outcome = ("non_speculative" if pipeline.manager is None
               else pipeline.manager.outcome)
    run_label = cfg.label or (
        f"kmeans/{plat.name}/{cfg.policy}"
        + ("" if cfg.speculative else "/nonspec"))
    return RunReport(
        label=run_label,
        result=AppResult(
            outcome=outcome,
            latencies=latencies,
            arrivals=pipeline.collector.arrivals(),
            completion_time=float(end),
        ),
        summary=None,
        utilisation=executor.utilisation(),
        roundtrip_ok=ok,
        config=kconfig,
        platform_name=plat.name,
        policy=cfg.policy,
        workers=cfg.workers if cfg.workers is not None else plat.default_workers,
        app="kmeans",
        trace=runtime.trace if cfg.trace else None,
        metrics=registry,
        run_config=cfg,
        events=events if cfg.events else None,
        warnings=run_warnings,
        output_sha256=output_sha,
        extras={
            "inertia": pipeline.inertia(),
            "rollbacks": stats.rollbacks if stats else 0,
            "speculations": stats.speculations if stats else 0,
            "labels_ok": ok,
        },
    )


register_job("kmeans", run_kmeans_experiment)

"""One-call runner for the k-means application experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.iomodels import ArrivalModel, DiskModel
from repro.kmeansapp.kmeans import KMeansModel, gaussian_mixture_stream
from repro.kmeansapp.pipeline import KMeansConfig, KMeansPipeline
from repro.platforms import Platform, get_platform
from repro.sim.rng import make_rng
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

__all__ = ["KMeansRunReport", "run_kmeans_experiment"]


@dataclass
class KMeansRunReport:
    """Metrics from one speculative clustering run."""

    outcome: str
    avg_latency: float
    completion_time: float
    latencies: np.ndarray
    inertia: float
    rollbacks: int
    speculations: int
    labels_ok: bool


def run_kmeans_experiment(
    *,
    n_blocks: int = 48,
    block_points: int = 512,
    n_clusters: int = 8,
    dim: int = 4,
    drift_blocks: int = 0,
    speculative: bool = True,
    step: int = 2,
    verification: str = "every_k",
    verify_k: int = 4,
    tolerance: float = 0.05,
    policy: str = "balanced",
    platform: str | Platform = "x86",
    workers: int | None = None,
    io: ArrivalModel | None = None,
    seed: int = 0,
) -> KMeansRunReport:
    """Run streaming k-means with centroid speculation.

    ``drift_blocks > 0`` shifts the mixture's means over the first blocks
    (an early transient): speculation before the drift settles rolls back.
    """
    rng = make_rng(seed)
    model = KMeansModel(n_clusters=n_clusters, dim=dim)
    config = KMeansConfig(
        speculative=speculative, step=step, verification=verification,
        verify_k=verify_k, tolerance=tolerance,
    )
    plat = get_platform(platform) if isinstance(platform, str) else platform
    io_model = io if io is not None else DiskModel(per_block_us=60.0)
    stream = gaussian_mixture_stream(
        n_blocks, block_points, n_clusters=n_clusters, dim=dim,
        drift_blocks=drift_blocks, seed=rng,
    )

    runtime = Runtime()
    executor = SimulatedExecutor(runtime, plat, policy=policy, workers=workers)
    pipeline = KMeansPipeline(runtime, model, config, n_blocks)
    arrivals = io_model.arrival_times(n_blocks, rng)
    for index, when in enumerate(arrivals):
        executor.sim.schedule_at(
            float(when), lambda i=index: pipeline.feed_block(i, stream[i]))
    end = executor.run()

    valid = pipeline.valid_versions()
    latencies = pipeline.collector.latencies(valid)
    ok = pipeline.verify_labels()
    if not ok:
        raise ExperimentError("k-means labels failed verification")
    stats = pipeline.manager.stats if pipeline.manager else None
    return KMeansRunReport(
        outcome=("non_speculative" if pipeline.manager is None
                 else pipeline.manager.outcome),
        avg_latency=float(latencies.mean()),
        completion_time=float(end),
        latencies=latencies,
        inertia=pipeline.inertia(),
        rollbacks=stats.rollbacks if stats else 0,
        speculations=stats.speculations if stats else 0,
        labels_ok=ok,
    )

"""Mini-batch k-means kernels and a synthetic point-stream generator.

All kernels are vectorised (pairwise distances via the expanded-norm trick,
assignments via argmin) — the per-block costs the platform models charge
correspond to real array work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.sim.rng import make_rng

__all__ = ["KMeansModel", "gaussian_mixture_stream"]


def _pairwise_sq(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared distances, (n_points, k)."""
    return (
        (points ** 2).sum(axis=1)[:, None]
        - 2.0 * points @ centroids.T
        + (centroids ** 2).sum(axis=1)[None, :]
    )


class KMeansModel:
    """State and kernels for streaming (mini-batch) k-means.

    The model follows Sculley-style mini-batch updates: each arriving block
    moves its nearest centroids toward the block's points with per-centroid
    learning rates 1/count.
    """

    def __init__(self, n_clusters: int = 8, dim: int = 4) -> None:
        if n_clusters < 1 or dim < 1:
            raise ExperimentError("need n_clusters >= 1 and dim >= 1")
        self.n_clusters = n_clusters
        self.dim = dim

    def init_centroids(self, first_block: np.ndarray) -> np.ndarray:
        """Deterministic seeding: k evenly-strided points of the first block."""
        n = len(first_block)
        if n < self.n_clusters:
            raise ExperimentError("first block smaller than k")
        idx = np.linspace(0, n - 1, self.n_clusters).astype(np.int64)
        return first_block[idx].copy()

    def minibatch_step(
        self, centroids: np.ndarray, counts: np.ndarray, block: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One mini-batch update; returns (new_centroids, new_counts)."""
        labels = self.assign(block, centroids)
        new_c = centroids.copy()
        new_n = counts.copy()
        for j in range(self.n_clusters):
            members = block[labels == j]
            if len(members) == 0:
                continue
            new_n[j] += len(members)
            lr = len(members) / new_n[j]
            new_c[j] = (1.0 - lr) * new_c[j] + lr * members.mean(axis=0)
        return new_c, new_n

    def assign(self, points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest-centroid label per point (the parallel second pass)."""
        return np.argmin(_pairwise_sq(points, centroids), axis=1)

    def inertia(self, points: np.ndarray, centroids: np.ndarray) -> float:
        """Mean squared distance to the nearest centroid."""
        d = _pairwise_sq(points, centroids)
        return float(np.maximum(d.min(axis=1), 0.0).mean())

    def centroid_error(self, predicted: np.ndarray, candidate: np.ndarray,
                       probe: np.ndarray) -> float:
        """Validator: relative inertia excess of ``predicted`` on a probe set.

        Mirrors the Huffman size check: both centroid sets are priced on the
        same reference points; 0.0 means the speculative centroids cluster
        the probe exactly as well as the refined ones.
        """
        i_pred = self.inertia(probe, predicted)
        i_cand = self.inertia(probe, candidate)
        if i_cand <= 0.0:
            return 0.0 if i_pred <= 0.0 else float("inf")
        return max(0.0, (i_pred - i_cand) / i_cand)


def gaussian_mixture_stream(
    n_blocks: int,
    block_points: int,
    *,
    n_clusters: int = 8,
    dim: int = 4,
    drift_blocks: int = 0,
    drift_scale: float = 3.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Synthetic point stream, (n_blocks, block_points, dim).

    Points come from a k-component Gaussian mixture. With
    ``drift_blocks > 0`` the component means start displaced by
    ``drift_scale`` and converge to their true positions over the first
    ``drift_blocks`` blocks — the same early-transient device as the BMP
    workload, provoking rollbacks for too-early speculation.
    """
    rng = make_rng(seed)
    means = rng.normal(0.0, 10.0, size=(n_clusters, dim))
    offset = rng.normal(0.0, drift_scale, size=(n_clusters, dim))
    out = np.empty((n_blocks, block_points, dim), dtype=np.float64)
    for b in range(n_blocks):
        w = max(0.0, 1.0 - b / drift_blocks) if drift_blocks else 0.0
        comp = rng.integers(0, n_clusters, size=block_points)
        noise = rng.normal(0.0, 1.0, size=(block_points, dim))
        out[b] = (means + w * offset)[comp] + noise
    return out

"""Speculative k-means — the paper's other motivating workload.

§II-A opens with "iterative algorithms such as k-means ... are commonly
used in large computations, notably in image processing". This package
builds that application on the speculation framework:

* points stream in block by block; a running mini-batch k-means refines the
  centroid estimate with every block (the update stream);
* the parallel second pass — assigning every point to its nearest centroid
  — is blocked behind the full fit, unless *speculative assignment* starts
  early with centroids predicted from a prefix of the stream;
* validation compares predicted vs refined centroids by relative inertia on
  a probe sample: clustering tolerates "accurate enough" centroids, paying
  a bounded inertia increase instead of waiting (the paper's
  accuracy-for-performance trade on a third domain).

Third client of :mod:`repro.core`, after Huffman and the FIR filter.
"""

from repro.kmeansapp.kmeans import KMeansModel, gaussian_mixture_stream
from repro.kmeansapp.pipeline import KMeansConfig, KMeansPipeline
from repro.kmeansapp.runner import run_kmeans_experiment

__all__ = [
    "KMeansModel",
    "gaussian_mixture_stream",
    "KMeansConfig",
    "KMeansPipeline",
    "run_kmeans_experiment",
]

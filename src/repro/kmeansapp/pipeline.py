"""Streaming k-means pipeline with centroid speculation.

Graph shape:

* per-block ``kstep`` tasks form the serial mini-batch refinement chain
  (each needs the previous state and its block) — the update stream;
* ``assign`` tasks label each block's points against some centroid set —
  data-parallel, but naturally blocked until the fit finishes;
* speculation predicts the centroids from the chain's prefix, launches
  assignments early, buffers the labels, and validates by relative inertia
  on a probe sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.frequency import SpeculationInterval, VerificationPolicy, get_verification
from repro.core.manager import SpeculationManager
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.errors import ExperimentError
from repro.kmeansapp.kmeans import KMeansModel
from repro.metrics.latency import LatencyCollector
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["KMeansConfig", "KMeansPipeline"]


@dataclass
class KMeansConfig:
    """Speculation knobs for the k-means application."""

    speculative: bool = True
    step: int = 2
    verification: VerificationPolicy | str = "every_k"
    verify_k: int = 4
    #: relative inertia excess allowed for speculative centroids.
    tolerance: float = 0.05
    #: blocks sampled into the probe set used by checks.
    probe_blocks: int = 2

    def resolve_verification(self) -> VerificationPolicy:
        if isinstance(self.verification, VerificationPolicy):
            return self.verification
        return get_verification(self.verification, k=self.verify_k)


class KMeansPipeline:
    """Drives one streaming clustering run over a runtime."""

    def __init__(
        self,
        runtime: Runtime,
        model: KMeansModel,
        config: KMeansConfig,
        n_blocks: int,
    ) -> None:
        if n_blocks < 1:
            raise ExperimentError("need at least one block")
        self.runtime = runtime
        self.model = model
        self.config = config
        self.n_blocks = n_blocks
        root = runtime.root.subgroup("kmeans")
        self.st_fit = root.subgroup("fit")
        self.st_assign = root.subgroup("assign")
        self.collector = LatencyCollector()
        self.blocks: dict[int, np.ndarray] = {}
        self._labels: dict[int, np.ndarray] = {}
        self._steps: dict[int, Task] = {}
        self._probe: list[np.ndarray] = []
        self._fed = 0
        self._natural_launched = False
        self._valid_centroids: np.ndarray | None = None
        self._builders: list[_AssignBuilder] = []

        self.barrier: WaitBuffer | None = None
        self.manager: SpeculationManager | None = None
        if config.speculative:
            self.barrier = WaitBuffer(sink=self._commit_sink, events=runtime.events)
            spec = (
                SpeculationSpec.builder("kmeans")
                .what(launch=self._launch_speculative,
                      recompute=self._launch_recompute)
                .how(self._make_predict_task,
                     interval=SpeculationInterval(config.step))
                .barrier(self.barrier)
                .validate(self._validator,
                          tolerance=RelativeTolerance(config.tolerance),
                          verification=config.resolve_verification(),
                          check_cost_hint={"entries": 512.0})
                .build()
            )
            self.manager = SpeculationManager(runtime, spec)
        self.st_fit.on_speculation_base(self._on_step_done)

    # ------------------------------------------------------------------
    # input + the serial fit chain
    # ------------------------------------------------------------------
    def feed_block(self, index: int, points: np.ndarray) -> None:
        if not (0 <= index < self.n_blocks):
            raise ExperimentError(f"block index {index} out of range")
        if index in self.blocks:
            raise ExperimentError(f"block {index} fed twice")
        points = np.asarray(points, dtype=np.float64)
        self.blocks[index] = points
        self._fed += 1
        if len(self._probe) < self.config.probe_blocks:
            self._probe.append(points)
        self.collector.record_arrival(index, self.runtime.now)
        for builder in list(self._builders):
            builder.on_block(index)
        self._make_step(index)

    def _make_step(self, index: int) -> None:
        block = self.blocks[index]
        model = self.model

        if index == 0:
            def fn0(b=block):
                centroids = model.init_centroids(b)
                counts = np.zeros(model.n_clusters, dtype=np.int64)
                centroids, counts = model.minibatch_step(centroids, counts, b)
                return {"out": (centroids, counts)}

            task = Task("kstep:0", fn0, kind="iterate", depth=1,
                        cost_hint={"entries": float(block.size)},
                        tags={"spec_base": True, "kstep": 0})
        else:
            def fn(state, b=block):
                centroids, counts = state
                return {"out": model.minibatch_step(centroids, counts, b)}

            task = Task(f"kstep:{index}", fn, inputs=("state",), kind="iterate",
                        depth=1, cost_hint={"entries": float(block.size)},
                        tags={"spec_base": True, "kstep": index})
        self._steps[index] = task
        self.runtime.add_task(task, self.st_fit)
        if index > 0 and index - 1 in self._steps:
            self.runtime.connect(self._steps[index - 1], "out", task, "state")
        if index + 1 in self._steps:  # pragma: no cover - ordered arrivals
            self.runtime.connect(task, "out", self._steps[index + 1], "state")

    def _on_step_done(self, task: Task, outs: dict[str, Any]) -> None:
        k = task.tags.get("kstep")
        if k is None:
            return
        centroids, _counts = outs["out"]
        is_final = k == self.n_blocks - 1
        if self.manager is not None:
            self.manager.offer_update(k + 1, centroids, is_final=is_final)
        elif is_final:
            self._launch_recompute(centroids)

    # ------------------------------------------------------------------
    # speculation plumbing
    # ------------------------------------------------------------------
    def _make_predict_task(self, centroids: np.ndarray, name: str) -> Task:
        return Task(name, lambda c=centroids: {"out": np.array(c, copy=True)},
                    kind="predict", depth=1,
                    cost_hint={"entries": float(np.size(centroids))})

    def _validator(self, predicted, candidate, _ref) -> float:
        probe = np.concatenate(self._probe) if self._probe else None
        if probe is None:  # pragma: no cover - probe always exists after b0
            return 0.0
        return self.model.centroid_error(predicted, candidate, probe)

    def _launch_speculative(self, version: SpecVersion) -> None:
        builder = _AssignBuilder(self, version.value, version=version)
        self._builders.append(builder)
        builder.bootstrap()

    def _launch_recompute(self, centroids: np.ndarray) -> None:
        if self._natural_launched:
            raise ExperimentError("natural assignment launched twice")
        self._natural_launched = True
        self._valid_centroids = centroids
        builder = _AssignBuilder(self, centroids, version=None)
        self._builders.append(builder)
        builder.bootstrap()

    def _assign_done(self, version: SpecVersion | None, outs: dict[str, Any]) -> None:
        block = outs["block"]
        now = self.runtime.now
        if version is None:
            self.collector.record_encode(block, now, None)
            self._commit_sink(block, outs["labels"], now)
        else:
            self.collector.record_encode(block, now, version.vid)
            assert self.barrier is not None
            self.barrier.deposit(version.vid, block, outs["labels"], now)

    def _commit_sink(self, block: int, labels: np.ndarray, now: float) -> None:
        self.collector.record_commit(block, now)
        self._labels[block] = labels

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def valid_versions(self) -> set[int | None]:
        if self.manager is None:
            return {None}
        if self.manager.outcome == "commit":
            return {next(v.vid for v in self.manager.versions if v.committed)}
        if self.manager.outcome == "recompute":
            return {None}
        raise ExperimentError("run not finished")

    @property
    def committed_centroids(self) -> np.ndarray:
        if self.manager is not None and self.manager.outcome == "commit":
            return next(v for v in self.manager.versions if v.committed).value
        if self._valid_centroids is None:
            raise ExperimentError("run not finished")
        return self._valid_centroids

    def labels(self) -> np.ndarray:
        if len(self._labels) != self.n_blocks:
            raise ExperimentError(
                f"only {len(self._labels)}/{self.n_blocks} blocks labelled")
        return np.concatenate([self._labels[i] for i in range(self.n_blocks)])

    def verify_labels(self) -> bool:
        """Committed labels equal re-assigning with the committed centroids."""
        centroids = self.committed_centroids
        for i in range(self.n_blocks):
            expect = self.model.assign(self.blocks[i], centroids)
            if not np.array_equal(expect, self._labels[i]):
                return False
        return True

    def inertia(self) -> float:
        """Mean squared distance of all points under the committed centroids."""
        points = np.concatenate([self.blocks[i] for i in range(self.n_blocks)])
        return self.model.inertia(points, self.committed_centroids)


class _AssignBuilder:
    """Creates assignment tasks for one centroid set (one version)."""

    def __init__(self, pipeline: KMeansPipeline, centroids: np.ndarray,
                 version: SpecVersion | None) -> None:
        self.pipeline = pipeline
        self.centroids = centroids
        self.version = version
        self.label = f"v{version.vid}" if version is not None else "nat"
        self._made: set[int] = set()

    @property
    def dead(self) -> bool:
        return self.version is not None and not self.version.active

    def bootstrap(self) -> None:
        for index in sorted(self.pipeline.blocks):
            self.on_block(index)

    def on_block(self, index: int) -> None:
        if self.dead or index in self._made:
            return
        self._made.add(index)
        pipeline = self.pipeline
        block = pipeline.blocks[index]
        task = Task(
            f"assign:{self.label}:{index}",
            lambda b=block, c=self.centroids, i=index: {
                "labels": pipeline.model.assign(b, c),
                "block": i,
            },
            kind="assign",
            depth=3,
            speculative=self.version is not None,
            cost_hint={"units": float(len(block))},
            tags={"block": index},
        )
        if self.version is not None:
            self.version.register(task)
        task.on_complete.append(
            lambda _t, outs, v=self.version: pipeline._assign_done(v, outs))
        pipeline.runtime.add_task(task, pipeline.st_assign)

"""Length-prefixed JSON framing for the serve protocol.

Every message on a serve connection — request or reply — is one frame:

    +----------------+----------------------------+
    | 4-byte BE len  |  UTF-8 JSON object (len B) |
    +----------------+----------------------------+

JSON keeps the protocol debuggable (``nc`` + a hand-built prefix gets
you a session) and version-tolerant (unknown keys are ignored). Binary
block payloads ride inside the JSON as base64 under ``data_b64`` —
measured overhead is ~33% on the wire, irrelevant next to the shm
transport that carries the bytes from the daemon to its workers.

The frame length is capped (:data:`MAX_FRAME_BYTES`) so a corrupt or
hostile prefix cannot make the daemon allocate gigabytes.

The same framing carries the distributed executor's traffic: a ``repro
worker-pool`` daemon (:mod:`repro.sre.worker_pool`) speaks these frames
for its control and seat connections, with task payload bytes riding
base64 in ``frames``/``payload_b64`` and pushed shared-memory blocks in
``data_b64`` chunks.

Trace context rides on the same frames: any request may carry a W3C-style
``traceparent`` string under :data:`TRACEPARENT_KEY` (see
:mod:`repro.obs.spans`). The server parses it tolerantly — a missing or
malformed value simply mints a fresh trace — so old clients keep working
against tracing servers and vice versa.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

from repro.errors import TransportError

__all__ = [
    "MAX_FRAME_BYTES",
    "TRACEPARENT_KEY",
    "decode_blob",
    "encode_blob",
    "recv_frame",
    "send_frame",
]

_LEN = struct.Struct(">I")

#: Frame key carrying W3C trace context (``00-<trace>-<span>-01``) on
#: requests. Optional on every op; unknown to old servers, ignored there.
TRACEPARENT_KEY = "traceparent"

#: Largest frame either side will accept: a 16 MiB block base64-expands
#: to ~22 MiB; 64 MiB leaves generous headroom without letting a bad
#: prefix turn into an allocation bomb.
MAX_FRAME_BYTES = 64 << 20


def encode_blob(data: bytes) -> str:
    """Binary payload -> the ``data_b64`` JSON representation."""
    return base64.b64encode(bytes(data)).decode("ascii")


def decode_blob(text: str) -> bytes:
    """Inverse of :func:`encode_blob`; raises TransportError on garbage."""
    try:
        return base64.b64decode(text, validate=True)
    except (ValueError, TypeError) as exc:
        raise TransportError(f"invalid base64 block payload: {exc}") from None


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Serialise ``obj`` and write one frame (atomic via ``sendall``)."""
    try:
        body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise TransportError(f"unserialisable frame: {exc}") from None
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if got == 0:
                return None
            raise TransportError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; returns the decoded object or None on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced a {length}-byte frame (cap "
            f"{MAX_FRAME_BYTES}); refusing to allocate")
    body = _recv_exact(sock, length)
    if body is None:  # pragma: no cover - EOF race after header
        raise TransportError("connection closed between header and body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed frame body: {exc}") from None
    if not isinstance(obj, dict):
        raise TransportError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj

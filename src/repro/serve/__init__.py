"""Long-lived speculation service: the `repro serve` daemon.

One process keeps the expensive substrate warm across jobs — worker
pools (:class:`~repro.sre.executor_procs.WorkerSupervisor` lanes),
shared-memory arenas (:class:`~repro.sre.shm.BlockStore`) and the
daemon's metrics registry — while tenants submit huffman / filter /
kmeans jobs over a local socket and get back the same
:class:`~repro.experiments.jobs.RunReport` summary a one-shot run
produces, byte-identical output digest included.

Layers (see docs/service.md):

* :mod:`repro.serve.wire` — length-prefixed JSON framing.
* :mod:`repro.serve.admission` — per-tenant bulkheads, queue-depth
  admission control, and the crash circuit breaker.
* :mod:`repro.serve.warm` — warm worker-pool lanes keyed by pool
  signature, leased to jobs and kept running between them.
* :mod:`repro.serve.server` — the socket server, job table and job
  worker threads.

The client side lives in :mod:`repro.client`.
"""

from repro.serve.admission import AdmissionController, TenantBreaker
from repro.serve.server import ServeSettings, SpeculationServer
from repro.serve.warm import LanePool

__all__ = [
    "AdmissionController",
    "LanePool",
    "ServeSettings",
    "SpeculationServer",
    "TenantBreaker",
]

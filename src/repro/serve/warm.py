"""Warm worker-pool lanes: the substrate `repro serve` keeps hot.

A **lane** is one started :class:`~repro.sre.executor_procs.WorkerSupervisor`
— worker processes up, pipes connected — waiting for a job. Jobs lease a
lane, build a :class:`~repro.sre.executor_procs.ProcessExecutor` around
it (``supervisor=`` injection; the executor rebinds the supervisor to
the job's runtime and leaves the processes running on shutdown), and
return it. The second job on a lane skips the entire pool start-up:
that latency gap is the tentpole measurement of ``tools/serve_bench.py``.

Lanes are keyed by **pool signature** — ``(tenant, workers,
fault_plan)`` — because a supervisor is stateful in exactly those
dimensions: its fault plan is baked into the worker processes at spawn,
and its respawn budgets are consumed for good. Keying the tenant in
means a tenant whose payloads kill workers poisons only *its own*
lane's seats, never a neighbour's; the circuit breaker then stops the
bleeding and :meth:`LanePool.drop` discards the damaged lane so a
half-open probe gets fresh seats.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field

from repro.sre.executor_procs import WorkerSupervisor
from repro.sre.runtime import Runtime
from repro.testing.faults import FaultPlan

__all__ = ["LanePool", "WarmLane"]


@dataclass
class WarmLane:
    """One started supervisor plus its lease bookkeeping."""

    key: tuple
    workers: int
    supervisor: WorkerSupervisor
    #: daemon-side runtime the supervisor is parked on between jobs (and
    #: rebound to before the shutdown harvest, so the workers' final
    #: metrics/events land in the daemon registry, not a dead job's).
    home_runtime: Runtime
    in_use: bool = False
    jobs_served: int = 0
    _stopped: bool = field(default=False, repr=False)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        # Park accounting back home before the harvest: the last job's
        # runtime may already be closed (its event sink flushed).
        self.supervisor.rebind(self.home_runtime)
        self.supervisor.stop()


class LanePool:
    """Get-or-spawn cache of warm lanes, capped at ``max_lanes``.

    ``lease`` returns a free lane for the signature (spawning one if
    needed and the cap allows), or ``None`` — meaning the job should run
    cold, building its own pool the one-shot way. Cold fallback keeps
    the cap a performance knob rather than a correctness constraint.
    """

    def __init__(self, *, home_runtime: Runtime, max_lanes: int = 4,
                 max_respawns: int = 3,
                 harvest_timeout_s: float | None = None) -> None:
        if max_lanes < 0:
            raise ValueError("max_lanes must be >= 0")
        self._home = home_runtime
        self.max_lanes = max_lanes
        self._max_respawns = max_respawns
        self._harvest_timeout_s = harvest_timeout_s
        self._lock = threading.Lock()
        self._lanes: list[WarmLane] = []
        self._closed = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context()
        m = home_runtime.metrics
        self._m_spawns = m.counter(
            "serve_lane_spawns", "warm worker-pool lanes spawned")
        self._m_reuses = m.counter(
            "serve_lane_reuses",
            "jobs that ran on an already-warm lane (pool start-up skipped)")
        self._m_drops = m.counter(
            "serve_lane_drops",
            "lanes discarded after crash-type job failures")
        self._g_lanes = m.gauge(
            "serve_lanes_live", "warm lanes currently alive")

    @staticmethod
    def signature(tenant: str, workers: int,
                  fault_plan: str | None) -> tuple:
        return (tenant, workers, fault_plan or "")

    def lease(self, tenant: str, workers: int,
              fault_plan: str | None = None) -> WarmLane | None:
        """A free warm lane for this signature, or None (run cold)."""
        key = self.signature(tenant, workers, fault_plan)
        with self._lock:
            if self._closed:
                return None
            for lane in self._lanes:
                if lane.key == key and not lane.in_use:
                    lane.in_use = True
                    lane.jobs_served += 1
                    self._m_reuses.inc()
                    self._home.events.emit(
                        "lane_reuse", tenant=tenant, workers=workers,
                        jobs_served=lane.jobs_served)
                    return lane
            if len(self._lanes) >= self.max_lanes:
                return None
            lane = self._spawn(key, tenant, workers, fault_plan)
            lane.in_use = True
            lane.jobs_served = 1
            self._lanes.append(lane)
            return lane

    def _spawn(self, key: tuple, tenant: str, workers: int,
               fault_plan: str | None) -> WarmLane:
        # Workers fork from the daemon: the shm resource tracker must
        # predate them (see ProcessExecutor._start_backend for the why).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        opts: dict = {"max_respawns": self._max_respawns}
        if self._harvest_timeout_s is not None:
            opts["harvest_timeout_s"] = self._harvest_timeout_s
        supervisor = WorkerSupervisor(
            self._ctx, workers, runtime=self._home,
            fault_plan=FaultPlan.parse(fault_plan), **opts)
        supervisor.start()
        self._m_spawns.inc()
        self._g_lanes.inc()
        self._home.events.emit("lane_spawn", tenant=tenant, workers=workers,
                               fault_plan=fault_plan or None)
        return WarmLane(key=key, workers=workers, supervisor=supervisor,
                        home_runtime=self._home)

    def release(self, lane: WarmLane, *, poisoned: bool = False) -> None:
        """Return a leased lane; ``poisoned`` discards it instead.

        A crash-type job failure leaves dead or degraded seats behind —
        respawn budgets are spent for the supervisor's lifetime — so the
        breaker's half-open probe must not inherit them.
        """
        with self._lock:
            lane.in_use = False
            if not poisoned:
                # Park the supervisor's accounting on the daemon runtime
                # between jobs: a stray late crash must not emit into a
                # finished job's closed event log.
                lane.supervisor.rebind(self._home)
                return
            if lane in self._lanes:
                self._lanes.remove(lane)
            self._m_drops.inc()
            self._g_lanes.dec()
            self._home.events.emit("lane_drop", tenant=lane.key[0],
                                   workers=lane.workers)
        lane.stop()

    def stats(self) -> list[dict]:
        with self._lock:
            return [{
                "tenant": lane.key[0],
                "workers": lane.workers,
                "fault_plan": lane.key[2] or None,
                "in_use": lane.in_use,
                "jobs_served": lane.jobs_served,
            } for lane in self._lanes]

    def close(self) -> None:
        """Stop every lane (daemon shutdown): final worker harvests run
        against the daemon runtime."""
        with self._lock:
            self._closed = True
            lanes, self._lanes = self._lanes, []
        for lane in lanes:
            lane.stop()
            self._g_lanes.dec()

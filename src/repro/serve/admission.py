"""Admission control for the serve daemon: bulkheads and circuit breakers.

Three independent gates decide whether a submitted job may enter the
daemon, each mapped to a distinct rejection ``reason`` so clients can
tell "back off" from "you are quarantined":

* **Per-tenant bulkhead** — a tenant may hold at most
  ``max_tenant_jobs`` jobs in flight (queued + running) and at most
  ``max_tenant_bytes`` of estimated payload bytes. One tenant flooding
  the daemon cannot starve the others of job slots or arena space.
  Rejections: ``tenant_busy``, ``tenant_bytes``.
* **Queue-depth admission control** — the daemon-wide in-flight count
  is capped at ``queue_limit``; past it every tenant gets ``queue_full``
  backpressure rather than unbounded queueing (the client retries with
  backoff).
* **Crash circuit breaker** — a tenant whose jobs keep *killing
  workers* (not merely failing: crash-type failures, detected by the
  server from the job's ``procs_worker_crashes`` /
  ``procs_tasks_quarantined`` counters) trips an open breaker after
  ``breaker_threshold`` consecutive crashes. Open means instant
  ``circuit_open`` rejection — the poisonous payloads stop reaching
  worker seats, whose respawn budgets are a finite resource. After
  ``breaker_cooldown_s`` the breaker goes **half-open**: exactly one
  probe job is admitted; success closes the breaker, another crash
  reopens it (and restarts the cooldown).

Everything takes an injectable ``clock`` so tests drive the breaker
through its state machine without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["AdmissionController", "TenantBreaker"]


class TenantBreaker:
    """Closed / open / half-open circuit breaker for one tenant.

    Counts *consecutive* crash-type failures: any success resets the
    count, so a tenant that occasionally loses a worker to a loaded
    machine never trips — only a payload that reliably kills its worker
    does.
    """

    def __init__(self, *, threshold: int = 2, cooldown_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._crashes = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.opens = 0  # lifetime open transitions (for stats/metrics)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May one more job from this tenant enter right now?"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = "half_open"
                    self._probe_out = True
                    return True  # the single probe
                return False
            # half_open: one probe at a time
            if self._probe_out:
                return False
            self._probe_out = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._crashes = 0
            self._probe_out = False
            self._state = "closed"

    def record_crash(self) -> None:
        with self._lock:
            self._probe_out = False
            if self._state == "half_open":
                self._trip()
                return
            self._crashes += 1
            if self._crashes >= self.threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._crashes = 0
        self._opened_at = self._clock()
        self.opens += 1


@dataclass
class _TenantState:
    breaker: TenantBreaker
    inflight_jobs: int = 0
    inflight_bytes: int = 0
    rejections: dict[str, int] = field(default_factory=dict)


class AdmissionController:
    """All three gates behind one ``admit`` / ``release`` pair.

    ``admit`` charges the tenant's bulkhead and the global queue depth
    atomically and returns ``None`` on success or the rejection reason
    (``circuit_open`` / ``tenant_busy`` / ``tenant_bytes`` /
    ``queue_full``). Every admitted job must be balanced by exactly one
    ``release`` with the same byte estimate, crash verdict attached.
    """

    REASONS = ("circuit_open", "tenant_busy", "tenant_bytes", "queue_full")

    def __init__(self, *, max_tenant_jobs: int = 2,
                 max_tenant_bytes: int = 64 << 20,
                 queue_limit: int = 8,
                 breaker_threshold: int = 2,
                 breaker_cooldown_s: float = 30.0,
                 clock=time.monotonic) -> None:
        if max_tenant_jobs < 1 or queue_limit < 1:
            raise ValueError("job limits must be >= 1")
        if max_tenant_bytes < 1:
            raise ValueError("max_tenant_bytes must be >= 1")
        self.max_tenant_jobs = max_tenant_jobs
        self.max_tenant_bytes = max_tenant_bytes
        self.queue_limit = queue_limit
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self._inflight_total = 0

    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState(
                breaker=TenantBreaker(
                    threshold=self._breaker_threshold,
                    cooldown_s=self._breaker_cooldown_s,
                    clock=self._clock))
        return state

    def admit(self, tenant: str, est_bytes: int) -> str | None:
        """Try to admit one job; None on success, else the reason."""
        with self._lock:
            state = self._tenant(tenant)
            reason = self._check(state, est_bytes)
            if reason is not None:
                state.rejections[reason] = state.rejections.get(reason, 0) + 1
                return reason
            # breaker.allow() mutates (open -> half_open probe), so it
            # runs last: a bulkhead rejection must not consume the probe.
            if not state.breaker.allow():
                state.rejections["circuit_open"] = (
                    state.rejections.get("circuit_open", 0) + 1)
                return "circuit_open"
            state.inflight_jobs += 1
            state.inflight_bytes += est_bytes
            self._inflight_total += 1
            return None

    def _check(self, state: _TenantState, est_bytes: int) -> str | None:
        if state.breaker.state == "open" and not self._cooled(state.breaker):
            return "circuit_open"
        if state.inflight_jobs >= self.max_tenant_jobs:
            return "tenant_busy"
        if state.inflight_bytes + est_bytes > self.max_tenant_bytes:
            return "tenant_bytes"
        if self._inflight_total >= self.queue_limit:
            return "queue_full"
        return None

    def _cooled(self, breaker: TenantBreaker) -> bool:
        return self._clock() - breaker._opened_at >= breaker.cooldown_s

    def release(self, tenant: str, est_bytes: int, *,
                crash: bool = False, success: bool = True) -> None:
        """Balance one ``admit``; feeds the breaker its verdict.

        ``crash=True`` means the job died by killing workers (breaker
        food); a plain failure (bad config caught late, assertion) is
        ``success=False, crash=False`` and leaves the breaker alone.
        """
        with self._lock:
            state = self._tenant(tenant)
            state.inflight_jobs = max(0, state.inflight_jobs - 1)
            state.inflight_bytes = max(0, state.inflight_bytes - est_bytes)
            self._inflight_total = max(0, self._inflight_total - 1)
            if crash:
                state.breaker.record_crash()
            elif success:
                state.breaker.record_success()

    def breaker_state(self, tenant: str) -> str:
        with self._lock:
            return self._tenant(tenant).breaker.state

    def stats(self) -> dict:
        """JSON-safe snapshot for the ``stats`` op and tests."""
        with self._lock:
            return {
                "inflight_total": self._inflight_total,
                "queue_limit": self.queue_limit,
                "tenants": {
                    name: {
                        "inflight_jobs": s.inflight_jobs,
                        "inflight_bytes": s.inflight_bytes,
                        "breaker": s.breaker.state,
                        "breaker_opens": s.breaker.opens,
                        "rejections": dict(s.rejections),
                    }
                    for name, s in sorted(self._tenants.items())
                },
            }

"""The `repro serve` daemon: socket server, job table, job workers.

One :class:`SpeculationServer` owns the warm substrate — a
:class:`~repro.serve.warm.LanePool` of started worker supervisors, one
shared :class:`~repro.sre.shm.BlockStore` arena set, and the daemon
metrics registry / flight recorder — and runs submitted jobs through the
unified :func:`repro.experiments.jobs.run_job` seam, so a served job is
*the same code path* as a one-shot run and must produce the same
``output_sha256``.

Protocol (see :mod:`repro.serve.wire` for framing): each request frame
carries ``op`` plus op-specific keys, each gets exactly one reply frame.

=============  =====================================================
op             meaning
=============  =====================================================
``ping``       liveness + daemon identity
``submit``     admit one job (``tenant``, ``config``); replies with
               ``job_id`` or a rejection ``reason`` (one of
               ``circuit_open`` / ``tenant_busy`` / ``tenant_bytes``
               / ``queue_full`` / ``bad_config``)
``block``      one streamed block for an ``io="live"`` job
``close_stream``  end of a live job's block stream
``status``     non-blocking job state
``result``     job state; ``wait=true`` blocks up to ``timeout_s``
``jobs``       the job table
``stats``      admission, breaker, lane, store, job-table and metrics
               snapshot plus anomaly warnings (`repro top --serve`
               polls this)
``trace``      a job's assembled distributed trace (span list)
``shutdown``   ack, then stop the daemon
=============  =====================================================

Tracing: a submit may carry a ``traceparent`` header
(:data:`repro.serve.wire.TRACEPARENT_KEY`); the daemon adopts it (or
mints a fresh context) and opens one child span per lifecycle stage —
admission, queue, lane lease, execute, live-block stream, result — each
double-entering into the flight recorder and the ``serve_job_stage_us``
histograms. The execute span's context rides into the runner via
``JobResources.trace`` and onward to worker processes in dispatch batch
headers, so worker-side ``worker_exec`` events join the same trace and
come back as worker-clock leaf spans. See docs/tracing.md.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError, TransportError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import JobResources, RunReport, run_job
from repro.obs.events import EventLog
from repro.obs.exporters import PeriodicSnapshotWriter
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, TraceContext, Tracer, parse_traceparent
from repro.serve.admission import AdmissionController
from repro.serve.warm import LanePool, WarmLane
from repro.serve.wire import (TRACEPARENT_KEY, decode_blob, recv_frame,
                              send_frame)
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore

__all__ = ["Job", "ServeSettings", "SpeculationServer"]

_EOF = object()  # live-stream terminator

#: stage-latency bucket bounds (µs): admission is tens of µs, a cold
#: procs spawn is hundreds of ms, a full job run is seconds — one
#: log-spaced ladder covers all three regimes.
_STAGE_BUCKETS_US = (100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
                     100_000.0, 300_000.0, 1e6, 3e6, 1e7, 3e7)


@dataclass
class ServeSettings:
    """Every knob of the daemon, CLI-mappable and test-injectable."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port back from .port
    #: job worker threads — the daemon-wide running-job parallelism.
    job_workers: int = 2
    max_tenant_jobs: int = 2
    max_tenant_bytes: int = 64 << 20
    queue_limit: int = 8
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 30.0
    max_lanes: int = 4
    #: respawn budget per warm lane (per seat), mirroring the one-shot
    #: ``max_worker_respawns`` knob.
    lane_max_respawns: int = 3
    #: seconds a live job's block_source waits for the next streamed block.
    stream_timeout_s: float = 60.0
    #: JSONL path for the daemon's own flight recorder (lifecycle events).
    events_out: str | None = None
    #: metrics snapshot path, rewritten every ``metrics_interval_s`` by a
    #: daemon thread (and once more on shutdown); None disables.
    metrics_out: str | None = None
    #: seconds between ``metrics_out`` snapshots.
    metrics_interval_s: float = 5.0
    #: breaker-flap anomaly: this many breaker opens for one tenant...
    flap_k: int = 3
    #: ...within this window flags the tenant as flapping.
    flap_window_s: float = 60.0
    #: per-connection idle timeout: a peer that stays silent this long is
    #: disconnected, so an idle (or slow-loris) client cannot pin a
    #: handler thread in ``recv_frame`` forever. None disables.
    conn_idle_timeout_s: float | None = 300.0
    #: written with the bound port once listening — CI's rendezvous.
    port_file: str | None = None


@dataclass
class Job:
    """One submitted job's row in the table."""

    id: str
    tenant: str
    config: RunConfig
    est_bytes: int
    state: str = "queued"  # queued -> running -> done | failed
    submitted_mono: float = 0.0
    started_mono: float = 0.0
    finished_mono: float = 0.0
    error: str | None = None
    reject_reason: str | None = None
    summary: dict | None = None
    metrics: MetricsRegistry | None = None
    done: threading.Event = field(default_factory=threading.Event)
    stream_q: "queue.Queue | None" = None
    stream_closed: bool = False
    #: adopted (or daemon-minted) submit trace context — the job span's
    #: parent; the whole row's events and spans share its trace_id.
    trace: TraceContext | None = None
    job_span: Span | None = None
    queue_span: Span | None = None
    stream_span: Span | None = None
    #: finished span dicts in completion order — the ``trace`` op payload.
    spans: list = field(default_factory=list)

    @property
    def trace_id(self) -> str | None:
        return self.job_span.trace_id if self.job_span is not None else None

    def row(self) -> dict:
        """JSON-safe table row (status / jobs ops)."""
        out = {
            "job_id": self.id,
            "tenant": self.tenant,
            "app": self.config.app,
            "state": self.state,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.state in ("done", "failed") and self.finished_mono:
            out["latency_s"] = round(
                self.finished_mono - self.submitted_mono, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


def _json_safe(value: Any) -> Any:
    """Recursively coerce report extras into JSON-representable types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _summarize(report: RunReport) -> dict:
    """The slice of a RunReport that crosses the wire.

    Full traces / metric registries stay daemon-side (export them via
    ``metrics_out`` / ``events_out`` in the job config); the summary
    carries everything the byte-identity and latency comparisons need.
    """
    return _json_safe({
        "label": report.label,
        "app": report.app,
        "outcome": report.result.outcome,
        "output_sha256": report.output_sha256,
        "roundtrip_ok": report.roundtrip_ok,
        "avg_latency": report.avg_latency,
        "completion_time": report.completion_time,
        "utilisation": report.utilisation,
        "policy": report.policy,
        "workers": report.workers,
        "platform": report.platform_name,
        "warnings": report.warnings or [],
        "extras": report.extras,
    })


class SpeculationServer:
    """The daemon. ``start()`` binds and spins threads; ``stop()`` tears
    everything down (lanes harvested, arenas unlinked, sinks flushed)."""

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings()
        s = self.settings
        self.metrics = MetricsRegistry()
        self.events = EventLog(path=s.events_out,
                               meta={"app": "serve"})
        #: daemon-side runtime: the home for lane supervisors between
        #: jobs and the registry serve_* instruments live on.
        self.runtime = Runtime(metrics=self.metrics, events=self.events,
                               track_memory=False)
        self.admission = AdmissionController(
            max_tenant_jobs=s.max_tenant_jobs,
            max_tenant_bytes=s.max_tenant_bytes,
            queue_limit=s.queue_limit,
            breaker_threshold=s.breaker_threshold,
            breaker_cooldown_s=s.breaker_cooldown_s)
        self.lanes = LanePool(home_runtime=self.runtime,
                              max_lanes=s.max_lanes,
                              max_respawns=s.lane_max_respawns)
        #: warm shm arenas, shared across jobs and tenants (per-tenant
        #: *byte budgets* bound each tenant's slice); jobs with
        #: ``transport="shm"`` borrow it via JobResources.store and the
        #: runner leaves it open.
        self.store = BlockStore(metrics=self.metrics, events=self.events)
        m = self.metrics
        self._m_submitted = m.counter(
            "serve_jobs_submitted", "jobs accepted into the table",
            labelnames=("tenant", "app"))
        self._m_rejected = m.counter(
            "serve_jobs_rejected", "submissions refused at admission",
            labelnames=("tenant", "reason"))
        self._m_finished = m.counter(
            "serve_jobs_finished", "jobs that reached a terminal state",
            labelnames=("tenant", "app", "state"))
        self._m_breaker_opens = m.counter(
            "serve_breaker_opens", "tenant circuit-breaker open transitions",
            labelnames=("tenant",))
        self._m_stage_us = m.histogram(
            "serve_job_stage_us",
            "per-stage job latency (admission/queue/lane_lease/execute/"
            "stream/result)",
            labelnames=("stage", "tenant"), buckets=_STAGE_BUCKETS_US)
        self._m_queue_wait_us = m.histogram(
            "serve_queue_wait_us", "accepted-submit to run-start wait",
            buckets=_STAGE_BUCKETS_US)
        self._m_lane_lease_us = m.histogram(
            "serve_lane_lease_us", "warm-lane lease latency by outcome",
            labelnames=("outcome",), buckets=_STAGE_BUCKETS_US)
        #: the daemon-wide tracer: span_start/span_end into self.events.
        self.tracer = Tracer(events=self.events)
        #: recent breaker_open monotonic stamps per tenant (flap detection).
        self._flap_times: dict[str, deque] = {}
        #: bounded ring of anomaly warnings the stats op surfaces.
        self._warnings: deque = deque(maxlen=32)
        self._snapshot_writer: PeriodicSnapshotWriter | None = None
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._job_seq = 0
        self._run_q: "queue.Queue[Job | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        #: live connections -> their handler threads; stop() closes every
        #: socket here so no handler outlives the daemon.
        self._conns: dict[socket.socket, threading.Thread] = {}
        self._conns_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._started_mono = 0.0
        self.shutdown_requested = threading.Event()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            raise ExperimentError("server is not started")
        return self._listener.getsockname()[1]

    def start(self) -> "SpeculationServer":
        s = self.settings
        self._listener = socket.create_server(
            (s.host, s.port), backlog=16, reuse_port=False)
        self._listener.settimeout(0.2)  # accept loop polls the stop flag
        self._started_mono = time.monotonic()
        for i in range(s.job_workers):
            t = threading.Thread(target=self._job_worker,
                                 name=f"serve-job-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._accept_loop,
                             name="serve-accept", daemon=True)
        t.start()
        self._threads.append(t)
        self.events.emit("serve_start", host=s.host, port=self.port,
                         job_workers=s.job_workers)
        if s.metrics_out:
            self._snapshot_writer = PeriodicSnapshotWriter(
                self.metrics, s.metrics_out,
                interval_s=s.metrics_interval_s).start()
        if s.port_file:
            with open(s.port_file, "w", encoding="utf-8") as fh:
                fh.write(str(self.port))
        return self

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self.shutdown_requested.set()
        for _ in range(self.settings.job_workers):
            self._run_q.put(None)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        # Wake every live handler: a silent peer would otherwise pin its
        # thread in recv_frame past shutdown. SHUT_RDWR delivers EOF to a
        # blocked recv where close() alone may not.
        with self._conns_lock:
            conns = list(self._conns.items())
        for conn, _t in conns:
            for closer in (lambda: conn.shutdown(socket.SHUT_RDWR),
                           conn.close):
                try:
                    closer()
                except OSError:
                    pass
        for t in self._threads + [t for _c, t in conns]:
            t.join(timeout=10.0)
        # Lanes first (their harvest emits into daemon metrics/events),
        # then arenas, then the event sink — mirror runner.py's ordering.
        # The snapshot writer stops after both so its final dump carries
        # the lane-harvest counters.
        try:
            self.lanes.close()
        finally:
            try:
                self.store.close()
            finally:
                if self._snapshot_writer is not None:
                    self._snapshot_writer.stop()  # one final snapshot
                self.events.emit("serve_stop")
                self.events.close()

    def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or KeyboardInterrupt), then stop."""
        try:
            while not self.shutdown_requested.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self.shutdown_requested.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us: shutting down
                return
            conn.settimeout(self.settings.conn_idle_timeout_s)
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 name="serve-conn", daemon=True)
            with self._conns_lock:
                self._conns[conn] = t
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            with conn:
                self._serve_conn_loop(conn)
        finally:
            with self._conns_lock:
                self._conns.pop(conn, None)

    def _serve_conn_loop(self, conn: socket.socket) -> None:
        while True:
            try:
                req = recv_frame(conn)
            except socket.timeout:
                self.events.emit("serve_conn_closed", reason="idle_timeout")
                return  # idle peer evicted (conn_idle_timeout_s)
            except (TransportError, OSError):
                return  # peer sent garbage, died mid-frame, or stop()
                # closed the socket under us
            if req is None:
                return
            self._serve_req(conn, req)
            if req.get("op") == "shutdown":
                self.shutdown_requested.set()
                return

    def _serve_req(self, conn: socket.socket, req: dict) -> None:
        try:
            reply = self._handle(req)
        except Exception as exc:  # noqa: BLE001 - reply, don't die
            reply = {"ok": False, "error": f"{type(exc).__name__}: "
                                           f"{exc}"}
        try:
            send_frame(conn, reply)
        except (TransportError, OSError):
            pass

    def _handle(self, req: dict) -> dict:
        op = req.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": f"unknown op {op!r}"}
        return handler(req)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def _op_ping(self, req: dict) -> dict:
        import os

        return {"ok": True, "op": "ping", "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started_mono, 3)}

    def _op_submit(self, req: dict) -> dict:
        tenant = str(req.get("tenant") or "default")
        # Adopt the client's trace context (tolerant: garbage or absence
        # mints a fresh trace) and open the job span right away — it
        # covers submit-to-done, and every stage span hangs off it.
        root = parse_traceparent(req.get(TRACEPARENT_KEY)) \
            or TraceContext.mint()
        job_span = self.tracer.start("job", parent=root, tenant=tenant)
        adm_span = self.tracer.start("admission", parent=job_span,
                                     tenant=tenant)
        raw = req.get("config")
        if not isinstance(raw, dict):
            self._reject_spans(adm_span, job_span, tenant, "bad_config")
            return {"ok": False, "reason": "bad_config",
                    "error": "submit requires a 'config' object",
                    "trace_id": job_span.trace_id}
        raw = dict(raw)
        app = str(raw.pop("app", "huffman"))
        blob = raw.pop("workload_b64", None)
        try:
            if blob is not None:
                raw["workload"] = decode_blob(blob)
            cfg = RunConfig.for_app(app, **raw)
        except (ExperimentError, TransportError, TypeError) as exc:
            self._m_rejected.labels(tenant=tenant, reason="bad_config").inc()
            self.events.emit("job_reject", tenant=tenant,
                             reason="bad_config", detail=str(exc),
                             trace_id=job_span.trace_id)
            self._reject_spans(adm_span, job_span, tenant, "bad_config")
            return {"ok": False, "reason": "bad_config", "error": str(exc),
                    "trace_id": job_span.trace_id}
        est_bytes = self._estimate_bytes(cfg)
        reason = self.admission.admit(tenant, est_bytes)
        if reason is not None:
            self._m_rejected.labels(tenant=tenant, reason=reason).inc()
            self.events.emit("job_reject", tenant=tenant, reason=reason,
                             app=cfg.app, est_bytes=est_bytes,
                             trace_id=job_span.trace_id)
            self._reject_spans(adm_span, job_span, tenant, reason)
            return {"ok": False, "reason": reason,
                    "error": f"admission refused: {reason}",
                    "trace_id": job_span.trace_id}
        with self._lock:
            self._job_seq += 1
            job = Job(id=f"job-{self._job_seq}", tenant=tenant, config=cfg,
                      est_bytes=est_bytes,
                      submitted_mono=time.monotonic(),
                      trace=root, job_span=job_span)
            if isinstance(cfg.io, str) and cfg.io == "live":
                job.stream_q = queue.Queue()
            self._jobs[job.id] = job
        self._end_stage(adm_span, stage="admission", tenant=tenant,
                        sink=job.spans.append, outcome="accepted",
                        job=job.id)
        # Queue wait starts at acceptance; _run_one closes it.
        job.queue_span = self.tracer.start("queue", parent=job_span,
                                           tenant=tenant, job=job.id)
        self._m_submitted.labels(tenant=tenant, app=cfg.app).inc()
        self.events.emit("job_submit", tenant=tenant, app=cfg.app,
                         job=job.id, est_bytes=est_bytes,
                         trace_id=job_span.trace_id)
        self._run_q.put(job)
        return {"ok": True, "job_id": job.id,
                "trace_id": job_span.trace_id}

    def _reject_spans(self, adm_span: Span, job_span: Span, tenant: str,
                      reason: str) -> None:
        """Close submit-path spans for a rejected submission.

        No Job row exists, so there is no sink — the spans live on in
        the flight recorder and the admission-stage histogram only.
        """
        self._end_stage(adm_span, stage="admission", tenant=tenant,
                        outcome=reason)
        self.tracer.end(job_span, state="rejected", outcome=reason)

    def _end_stage(self, span: Span, *, stage: str, tenant: str,
                   sink: Any = None, **attrs: Any) -> Span:
        """Close a stage span, double-entering into the SLO histogram."""
        span = self.tracer.end(span, sink=sink, **attrs)
        self._m_stage_us.labels(stage=stage, tenant=tenant).observe(
            span.dur_us)
        return span

    @staticmethod
    def _estimate_bytes(cfg: RunConfig) -> int:
        """Payload-byte estimate the tenant bulkhead charges."""
        if isinstance(cfg.workload, (bytes, bytearray)):
            return len(cfg.workload)
        if cfg.n_blocks is not None:
            return int(cfg.n_blocks) * int(cfg.block_size)
        return 0

    def _get_job(self, req: dict) -> Job | None:
        job_id = req.get("job_id")
        with self._lock:
            return self._jobs.get(job_id) if isinstance(job_id, str) else None

    def _op_block(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if job.stream_q is None:
            return {"ok": False, "error": f"{job.id} is not a live-stream "
                                          "job (io != 'live')"}
        if job.stream_closed or job.done.is_set():
            return {"ok": False, "error": f"{job.id} stream already closed"}
        data = decode_blob(str(req.get("data_b64", "")))
        if job.stream_span is None and job.job_span is not None:
            # The stream stage runs from the first block to close_stream.
            job.stream_span = self.tracer.start(
                "stream", parent=job.job_span, tenant=job.tenant,
                job=job.id)
        job.stream_q.put(data)
        return {"ok": True, "job_id": job.id, "index": req.get("index")}

    def _op_close_stream(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if job.stream_q is None:
            return {"ok": False, "error": f"{job.id} is not a live-stream job"}
        if not job.stream_closed:
            job.stream_closed = True
            if job.stream_span is not None and job.stream_span.t1_us is None:
                self._end_stage(job.stream_span, stage="stream",
                                tenant=job.tenant, sink=job.spans.append)
            job.stream_q.put(_EOF)
        return {"ok": True, "job_id": job.id}

    def _op_status(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        return {"ok": True, **job.row()}

    def _op_result(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if req.get("wait"):
            timeout = float(req.get("timeout_s", 60.0))
            if not job.done.wait(timeout=timeout):
                return {"ok": False, "reason": "timeout",
                        "error": f"{job.id} still {job.state} after "
                                 f"{timeout}s", **job.row()}
        out = {"ok": True, **job.row()}
        if job.summary is not None:
            out["report"] = job.summary
        return out

    def _op_jobs(self, req: dict) -> dict:
        with self._lock:
            rows = [j.row() for j in self._jobs.values()]
        return {"ok": True, "jobs": rows}

    def _op_stats(self, req: dict) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for j in self._jobs.values():
                states[j.state] = states.get(j.state, 0) + 1
        return {"ok": True,
                "uptime_s": round(time.monotonic() - self._started_mono, 3),
                "jobs": states,
                "admission": self.admission.stats(),
                "lanes": self.lanes.stats(),
                "store": {"live_refs": self.store.live_refs,
                          "live_segments": self.store.live_segments},
                "metrics": self.metrics.snapshot(),
                "warnings": list(self._warnings)}

    def _op_trace(self, req: dict) -> dict:
        """A job's assembled distributed trace.

        Finished spans come from the job's sink list; for a still-running
        job the open stage spans ride along too (``t1_us`` null), so a
        live trace renders partially instead of empty. Worker-clock
        leaves sort last — their timestamps share no epoch with the
        daemon's.
        """
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        spans = list(job.spans)
        seen = {s.get("span_id") for s in spans}
        for open_span in (job.job_span, job.queue_span, job.stream_span):
            if open_span is not None and open_span.span_id not in seen:
                spans.append(open_span.to_dict())
        spans.sort(key=lambda s: (s.get("clock") == "worker",
                                  s.get("t0_us") or 0.0))
        return {"ok": True, "job_id": job.id, "state": job.state,
                "tenant": job.tenant, "trace_id": job.trace_id,
                "spans": spans}

    def _op_shutdown(self, req: dict) -> dict:
        self.events.emit("serve_shutdown_requested")
        return {"ok": True, "op": "shutdown"}

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _job_worker(self) -> None:
        while True:
            job = self._run_q.get()
            if job is None:
                return
            self._run_one(job)

    def _stream_source(self, job: Job):
        declared = job.config.n_blocks or 0
        for _ in range(declared):
            try:
                item = job.stream_q.get(timeout=self.settings.stream_timeout_s)
            except queue.Empty:
                raise ExperimentError(
                    f"{job.id}: no streamed block for "
                    f"{self.settings.stream_timeout_s}s") from None
            if item is _EOF:
                return
            yield item

    def _run_one(self, job: Job) -> None:
        cfg = job.config
        tenant = job.tenant
        job.state = "running"
        job.started_mono = time.monotonic()
        if job.queue_span is not None:
            span = self._end_stage(job.queue_span, stage="queue",
                                   tenant=tenant, sink=job.spans.append)
            self._m_queue_wait_us.observe(span.dur_us)
        self.events.emit("job_start", tenant=tenant, app=cfg.app,
                         job=job.id, trace_id=job.trace_id,
                         queued_s=round(job.started_mono
                                        - job.submitted_mono, 6))
        registry = MetricsRegistry()
        job.metrics = registry
        lane: WarmLane | None = None
        crash = False
        try:
            resources = JobResources()
            if cfg.transport == "shm":
                resources.store = self.store
            if job.stream_q is not None:
                resources.block_source = self._stream_source(job)
            if cfg.executor == "procs":
                lease_span = self.tracer.start("lane_lease",
                                               parent=job.job_span,
                                               tenant=tenant, job=job.id)
                workers = cfg.workers if cfg.workers is not None else 4
                lane = self.lanes.lease(job.tenant, workers, cfg.fault_plan)
                # jobs_served counts this lease already, so >1 means the
                # lane's workers were spawned by an earlier job: warm.
                outcome = "warm" if lane is not None \
                    and lane.jobs_served > 1 else "cold"
                if lane is not None:
                    resources.executor_factory = self._factory(cfg, lane)
                span = self._end_stage(lease_span, stage="lane_lease",
                                       tenant=tenant, sink=job.spans.append,
                                       outcome=outcome)
                self._m_lane_lease_us.labels(outcome=outcome).observe(
                    span.dur_us)
            exec_span = self.tracer.start("execute", parent=job.job_span,
                                          tenant=tenant, job=job.id,
                                          app=cfg.app)
            # The runner stamps this context onto the job's event log;
            # dispatch batch headers carry it on to worker processes.
            resources.trace = exec_span.context
            try:
                report = run_job(cfg, metrics=registry, resources=resources)
            finally:
                self._end_stage(exec_span, stage="execute", tenant=tenant,
                                sink=job.spans.append)
            result_span = self.tracer.start("result", parent=job.job_span,
                                            tenant=tenant, job=job.id)
            try:
                self._collect_worker_spans(job, exec_span, report)
                job.summary = _summarize(report)
                job.state = "done"
            finally:
                self._end_stage(result_span, stage="result", tenant=tenant,
                                sink=job.spans.append)
        except Exception as exc:  # noqa: BLE001 - job fails, daemon lives
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            crash = self._looks_like_crash(registry)
        finally:
            job.finished_mono = time.monotonic()
            if job.stream_span is not None and job.stream_span.t1_us is None:
                # Failed live job: the client never sent close_stream.
                self._end_stage(job.stream_span, stage="stream",
                                tenant=tenant, sink=job.spans.append)
            if lane is not None:
                self.lanes.release(lane, poisoned=crash)
            before = self.admission.breaker_state(job.tenant)
            self.admission.release(job.tenant, job.est_bytes,
                                   crash=crash, success=job.state == "done")
            after = self.admission.breaker_state(job.tenant)
            if crash and after == "open" and before != "open":
                self._m_breaker_opens.labels(tenant=job.tenant).inc()
                self.events.emit("breaker_open", tenant=job.tenant,
                                 job=job.id, trace_id=job.trace_id)
                self._note_breaker_open(job.tenant)
            self._m_finished.labels(tenant=job.tenant, app=cfg.app,
                                    state=job.state).inc()
            self.events.emit("job_done" if job.state == "done"
                             else "job_failed",
                             tenant=job.tenant, app=cfg.app, job=job.id,
                             error=job.error, trace_id=job.trace_id,
                             run_s=round(job.finished_mono
                                         - job.started_mono, 6))
            if job.job_span is not None:
                self.tracer.end(job.job_span, sink=job.spans.append,
                                state=job.state)
            job.done.set()

    #: worker leaf spans kept per job — enough to see every worker's
    #: share without letting a 10k-block job bloat the trace payload.
    _WORKER_SPAN_CAP = 128

    def _collect_worker_spans(self, job: Job, parent: Span,
                              report: RunReport) -> None:
        """Turn merged ``worker_exec`` events into worker-clock leaves.

        Worker events carry the trace id stamped from the dispatch batch
        header; here they become children of the execute span so the
        assembled tree shows daemon stages *and* per-payload worker body
        time. A worker's monotonic clock shares no epoch with the
        daemon's, so each leaf is tagged ``clock="worker"`` and exporters
        lay those out in their own lane. Overflow past the cap is
        recorded, never silent.
        """
        if report.events is None:
            return
        kept = 0
        dropped = 0
        for ev in report.events.events():
            if ev.get("kind") != "worker_exec":
                continue
            if ev.get("trace_id") != parent.trace_id:
                continue  # a previous job's straggler, harvested late
            if kept >= self._WORKER_SPAN_CAP:
                dropped += 1
                continue
            kept += 1
            t1 = float(ev.get("t_us", 0.0))
            dur = float(ev.get("dur_us", 0.0))
            leaf = {
                "name": "worker_exec",
                "trace_id": parent.trace_id,
                "span_id": f"worker-{ev.get('worker', '?')}-"
                           f"{ev.get('seq', kept)}",
                "parent_id": parent.span_id,
                "t0_us": t1 - dur,
                "t1_us": t1,
                "dur_us": dur,
                "clock": "worker",
            }
            for key in ("worker", "status", "task"):
                if ev.get(key) is not None:
                    leaf[key] = ev[key]
            job.spans.append(leaf)
        if dropped:
            self.events.emit("trace_spans_dropped", job=job.id,
                             trace_id=parent.trace_id, kept=kept,
                             dropped=dropped)

    def _note_breaker_open(self, tenant: str) -> None:
        """Inline breaker-flap detector (the offline twin lives in
        :func:`repro.obs.anomaly.detect_anomalies`): ``flap_k`` opens
        inside ``flap_window_s`` flags the tenant in the stats op."""
        now = time.monotonic()
        window = self.settings.flap_window_s
        times = self._flap_times.setdefault(tenant, deque())
        times.append(now)
        while times and now - times[0] > window:
            times.popleft()
        if len(times) >= self.settings.flap_k:
            self.events.emit("anomaly_breaker_flap", tenant=tenant,
                             opens=len(times), window_s=window)
            self._warnings.append(
                f"breaker_flap: tenant {tenant!r} breaker opened "
                f"{len(times)}x within {window:.0f}s — crash-looping "
                "submissions; inspect the tenant's recent job_failed "
                "events")

    def _factory(self, cfg: RunConfig, lane: WarmLane):
        """Executor factory closing over a leased warm lane."""
        store = self.store if cfg.transport == "shm" else None

        def build(runtime: Runtime) -> ProcessExecutor:
            return ProcessExecutor(
                runtime,
                policy=cfg.policy if cfg.policy != "nonspec"
                else "conservative",
                workers=lane.workers,
                supervisor=lane.supervisor,
                store=store,
                steal=cfg.steal,
                dispatch_timeout_s=cfg.dispatch_timeout_s,
                max_task_retries=cfg.max_task_retries,
                retry_backoff_s=cfg.retry_backoff_s,
            )

        return build

    @staticmethod
    def _looks_like_crash(registry: MetricsRegistry) -> bool:
        """Did this job's failure involve killing workers?

        Breaker food is crash-type failure only: the job's own registry
        shows worker deaths (``procs_worker_crashes``) or tasks
        quarantined after repeated deaths. A clean ExperimentError (bad
        geometry, failed verification) never trips the breaker.
        """
        crashes = registry.get("procs_worker_crashes")
        if crashes is not None and any(
                s["value"] > 0 for s in crashes.snapshot_series()):
            return True
        quarantined = registry.get("procs_tasks_quarantined")
        return quarantined is not None and any(
            s["value"] > 0 for s in quarantined.snapshot_series())

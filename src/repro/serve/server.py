"""The `repro serve` daemon: socket server, job table, job workers.

One :class:`SpeculationServer` owns the warm substrate — a
:class:`~repro.serve.warm.LanePool` of started worker supervisors, one
shared :class:`~repro.sre.shm.BlockStore` arena set, and the daemon
metrics registry / flight recorder — and runs submitted jobs through the
unified :func:`repro.experiments.jobs.run_job` seam, so a served job is
*the same code path* as a one-shot run and must produce the same
``output_sha256``.

Protocol (see :mod:`repro.serve.wire` for framing): each request frame
carries ``op`` plus op-specific keys, each gets exactly one reply frame.

=============  =====================================================
op             meaning
=============  =====================================================
``ping``       liveness + daemon identity
``submit``     admit one job (``tenant``, ``config``); replies with
               ``job_id`` or a rejection ``reason`` (one of
               ``circuit_open`` / ``tenant_busy`` / ``tenant_bytes``
               / ``queue_full`` / ``bad_config``)
``block``      one streamed block for an ``io="live"`` job
``close_stream``  end of a live job's block stream
``status``     non-blocking job state
``result``     job state; ``wait=true`` blocks up to ``timeout_s``
``jobs``       the job table
``stats``      admission, breaker, lane and store snapshot
``shutdown``   ack, then stop the daemon
=============  =====================================================
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExperimentError, TransportError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import JobResources, RunReport, run_job
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController
from repro.serve.warm import LanePool, WarmLane
from repro.serve.wire import decode_blob, recv_frame, send_frame
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore

__all__ = ["Job", "ServeSettings", "SpeculationServer"]

_EOF = object()  # live-stream terminator


@dataclass
class ServeSettings:
    """Every knob of the daemon, CLI-mappable and test-injectable."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port back from .port
    #: job worker threads — the daemon-wide running-job parallelism.
    job_workers: int = 2
    max_tenant_jobs: int = 2
    max_tenant_bytes: int = 64 << 20
    queue_limit: int = 8
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 30.0
    max_lanes: int = 4
    #: respawn budget per warm lane (per seat), mirroring the one-shot
    #: ``max_worker_respawns`` knob.
    lane_max_respawns: int = 3
    #: seconds a live job's block_source waits for the next streamed block.
    stream_timeout_s: float = 60.0
    #: JSONL path for the daemon's own flight recorder (lifecycle events).
    events_out: str | None = None
    #: written with the bound port once listening — CI's rendezvous.
    port_file: str | None = None


@dataclass
class Job:
    """One submitted job's row in the table."""

    id: str
    tenant: str
    config: RunConfig
    est_bytes: int
    state: str = "queued"  # queued -> running -> done | failed
    submitted_mono: float = 0.0
    started_mono: float = 0.0
    finished_mono: float = 0.0
    error: str | None = None
    reject_reason: str | None = None
    summary: dict | None = None
    metrics: MetricsRegistry | None = None
    done: threading.Event = field(default_factory=threading.Event)
    stream_q: "queue.Queue | None" = None
    stream_closed: bool = False

    def row(self) -> dict:
        """JSON-safe table row (status / jobs ops)."""
        out = {
            "job_id": self.id,
            "tenant": self.tenant,
            "app": self.config.app,
            "state": self.state,
        }
        if self.state in ("done", "failed") and self.finished_mono:
            out["latency_s"] = round(
                self.finished_mono - self.submitted_mono, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


def _json_safe(value: Any) -> Any:
    """Recursively coerce report extras into JSON-representable types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _summarize(report: RunReport) -> dict:
    """The slice of a RunReport that crosses the wire.

    Full traces / metric registries stay daemon-side (export them via
    ``metrics_out`` / ``events_out`` in the job config); the summary
    carries everything the byte-identity and latency comparisons need.
    """
    return _json_safe({
        "label": report.label,
        "app": report.app,
        "outcome": report.result.outcome,
        "output_sha256": report.output_sha256,
        "roundtrip_ok": report.roundtrip_ok,
        "avg_latency": report.avg_latency,
        "completion_time": report.completion_time,
        "utilisation": report.utilisation,
        "policy": report.policy,
        "workers": report.workers,
        "platform": report.platform_name,
        "warnings": report.warnings or [],
        "extras": report.extras,
    })


class SpeculationServer:
    """The daemon. ``start()`` binds and spins threads; ``stop()`` tears
    everything down (lanes harvested, arenas unlinked, sinks flushed)."""

    def __init__(self, settings: ServeSettings | None = None) -> None:
        self.settings = settings or ServeSettings()
        s = self.settings
        self.metrics = MetricsRegistry()
        self.events = EventLog(path=s.events_out,
                               meta={"app": "serve"})
        #: daemon-side runtime: the home for lane supervisors between
        #: jobs and the registry serve_* instruments live on.
        self.runtime = Runtime(metrics=self.metrics, events=self.events,
                               track_memory=False)
        self.admission = AdmissionController(
            max_tenant_jobs=s.max_tenant_jobs,
            max_tenant_bytes=s.max_tenant_bytes,
            queue_limit=s.queue_limit,
            breaker_threshold=s.breaker_threshold,
            breaker_cooldown_s=s.breaker_cooldown_s)
        self.lanes = LanePool(home_runtime=self.runtime,
                              max_lanes=s.max_lanes,
                              max_respawns=s.lane_max_respawns)
        #: warm shm arenas, shared across jobs and tenants (per-tenant
        #: *byte budgets* bound each tenant's slice); jobs with
        #: ``transport="shm"`` borrow it via JobResources.store and the
        #: runner leaves it open.
        self.store = BlockStore(metrics=self.metrics, events=self.events)
        m = self.metrics
        self._m_submitted = m.counter(
            "serve_jobs_submitted", "jobs accepted into the table",
            labelnames=("tenant", "app"))
        self._m_rejected = m.counter(
            "serve_jobs_rejected", "submissions refused at admission",
            labelnames=("tenant", "reason"))
        self._m_finished = m.counter(
            "serve_jobs_finished", "jobs that reached a terminal state",
            labelnames=("tenant", "app", "state"))
        self._m_breaker_opens = m.counter(
            "serve_breaker_opens", "tenant circuit-breaker open transitions",
            labelnames=("tenant",))
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._job_seq = 0
        self._run_q: "queue.Queue[Job | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._started_mono = 0.0
        self.shutdown_requested = threading.Event()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            raise ExperimentError("server is not started")
        return self._listener.getsockname()[1]

    def start(self) -> "SpeculationServer":
        s = self.settings
        self._listener = socket.create_server(
            (s.host, s.port), backlog=16, reuse_port=False)
        self._listener.settimeout(0.2)  # accept loop polls the stop flag
        self._started_mono = time.monotonic()
        for i in range(s.job_workers):
            t = threading.Thread(target=self._job_worker,
                                 name=f"serve-job-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        t = threading.Thread(target=self._accept_loop,
                             name="serve-accept", daemon=True)
        t.start()
        self._threads.append(t)
        self.events.emit("serve_start", host=s.host, port=self.port,
                         job_workers=s.job_workers)
        if s.port_file:
            with open(s.port_file, "w", encoding="utf-8") as fh:
                fh.write(str(self.port))
        return self

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self.shutdown_requested.set()
        for _ in range(self.settings.job_workers):
            self._run_q.put(None)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for t in self._threads:
            t.join(timeout=10.0)
        # Lanes first (their harvest emits into daemon metrics/events),
        # then arenas, then the event sink — mirror runner.py's ordering.
        try:
            self.lanes.close()
        finally:
            try:
                self.store.close()
            finally:
                self.events.emit("serve_stop")
                self.events.close()

    def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or KeyboardInterrupt), then stop."""
        try:
            while not self.shutdown_requested.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self.shutdown_requested.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us: shutting down
                return
            t = threading.Thread(target=self._serve_conn, args=(conn,),
                                 name="serve-conn", daemon=True)
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    req = recv_frame(conn)
                except TransportError:
                    return  # peer sent garbage or died mid-frame
                if req is None:
                    return
                try:
                    reply = self._handle(req)
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    reply = {"ok": False, "error": f"{type(exc).__name__}: "
                                                   f"{exc}"}
                try:
                    send_frame(conn, reply)
                except (TransportError, OSError):
                    return
                if req.get("op") == "shutdown":
                    self.shutdown_requested.set()
                    return

    def _handle(self, req: dict) -> dict:
        op = req.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": f"unknown op {op!r}"}
        return handler(req)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def _op_ping(self, req: dict) -> dict:
        import os

        return {"ok": True, "op": "ping", "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started_mono, 3)}

    def _op_submit(self, req: dict) -> dict:
        tenant = str(req.get("tenant") or "default")
        raw = req.get("config")
        if not isinstance(raw, dict):
            return {"ok": False, "reason": "bad_config",
                    "error": "submit requires a 'config' object"}
        raw = dict(raw)
        app = str(raw.pop("app", "huffman"))
        blob = raw.pop("workload_b64", None)
        if blob is not None:
            raw["workload"] = decode_blob(blob)
        try:
            cfg = RunConfig.for_app(app, **raw)
        except (ExperimentError, TypeError) as exc:
            self._m_rejected.labels(tenant=tenant, reason="bad_config").inc()
            self.events.emit("job_reject", tenant=tenant,
                             reason="bad_config", detail=str(exc))
            return {"ok": False, "reason": "bad_config", "error": str(exc)}
        est_bytes = self._estimate_bytes(cfg)
        reason = self.admission.admit(tenant, est_bytes)
        if reason is not None:
            self._m_rejected.labels(tenant=tenant, reason=reason).inc()
            self.events.emit("job_reject", tenant=tenant, reason=reason,
                             app=cfg.app, est_bytes=est_bytes)
            return {"ok": False, "reason": reason,
                    "error": f"admission refused: {reason}"}
        with self._lock:
            self._job_seq += 1
            job = Job(id=f"job-{self._job_seq}", tenant=tenant, config=cfg,
                      est_bytes=est_bytes,
                      submitted_mono=time.monotonic())
            if isinstance(cfg.io, str) and cfg.io == "live":
                job.stream_q = queue.Queue()
            self._jobs[job.id] = job
        self._m_submitted.labels(tenant=tenant, app=cfg.app).inc()
        self.events.emit("job_submit", tenant=tenant, app=cfg.app,
                         job=job.id, est_bytes=est_bytes)
        self._run_q.put(job)
        return {"ok": True, "job_id": job.id}

    @staticmethod
    def _estimate_bytes(cfg: RunConfig) -> int:
        """Payload-byte estimate the tenant bulkhead charges."""
        if isinstance(cfg.workload, (bytes, bytearray)):
            return len(cfg.workload)
        if cfg.n_blocks is not None:
            return int(cfg.n_blocks) * int(cfg.block_size)
        return 0

    def _get_job(self, req: dict) -> Job | None:
        job_id = req.get("job_id")
        with self._lock:
            return self._jobs.get(job_id) if isinstance(job_id, str) else None

    def _op_block(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if job.stream_q is None:
            return {"ok": False, "error": f"{job.id} is not a live-stream "
                                          "job (io != 'live')"}
        if job.stream_closed or job.done.is_set():
            return {"ok": False, "error": f"{job.id} stream already closed"}
        data = decode_blob(str(req.get("data_b64", "")))
        job.stream_q.put(data)
        return {"ok": True, "job_id": job.id, "index": req.get("index")}

    def _op_close_stream(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if job.stream_q is None:
            return {"ok": False, "error": f"{job.id} is not a live-stream job"}
        if not job.stream_closed:
            job.stream_closed = True
            job.stream_q.put(_EOF)
        return {"ok": True, "job_id": job.id}

    def _op_status(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        return {"ok": True, **job.row()}

    def _op_result(self, req: dict) -> dict:
        job = self._get_job(req)
        if job is None:
            return {"ok": False, "reason": "unknown_job",
                    "error": f"unknown job {req.get('job_id')!r}"}
        if req.get("wait"):
            timeout = float(req.get("timeout_s", 60.0))
            if not job.done.wait(timeout=timeout):
                return {"ok": False, "reason": "timeout",
                        "error": f"{job.id} still {job.state} after "
                                 f"{timeout}s", **job.row()}
        out = {"ok": True, **job.row()}
        if job.summary is not None:
            out["report"] = job.summary
        return out

    def _op_jobs(self, req: dict) -> dict:
        with self._lock:
            rows = [j.row() for j in self._jobs.values()]
        return {"ok": True, "jobs": rows}

    def _op_stats(self, req: dict) -> dict:
        return {"ok": True,
                "admission": self.admission.stats(),
                "lanes": self.lanes.stats(),
                "store": {"live_refs": self.store.live_refs,
                          "live_segments": self.store.live_segments}}

    def _op_shutdown(self, req: dict) -> dict:
        self.events.emit("serve_shutdown_requested")
        return {"ok": True, "op": "shutdown"}

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _job_worker(self) -> None:
        while True:
            job = self._run_q.get()
            if job is None:
                return
            self._run_one(job)

    def _stream_source(self, job: Job):
        declared = job.config.n_blocks or 0
        for _ in range(declared):
            try:
                item = job.stream_q.get(timeout=self.settings.stream_timeout_s)
            except queue.Empty:
                raise ExperimentError(
                    f"{job.id}: no streamed block for "
                    f"{self.settings.stream_timeout_s}s") from None
            if item is _EOF:
                return
            yield item

    def _run_one(self, job: Job) -> None:
        cfg = job.config
        job.state = "running"
        job.started_mono = time.monotonic()
        self.events.emit("job_start", tenant=job.tenant, app=cfg.app,
                         job=job.id,
                         queued_s=round(job.started_mono
                                        - job.submitted_mono, 6))
        registry = MetricsRegistry()
        job.metrics = registry
        lane: WarmLane | None = None
        crash = False
        try:
            resources = JobResources()
            if cfg.transport == "shm":
                resources.store = self.store
            if job.stream_q is not None:
                resources.block_source = self._stream_source(job)
            if cfg.executor == "procs":
                workers = cfg.workers if cfg.workers is not None else 4
                lane = self.lanes.lease(job.tenant, workers, cfg.fault_plan)
                if lane is not None:
                    resources.executor_factory = self._factory(cfg, lane)
            report = run_job(cfg, metrics=registry, resources=resources)
            job.summary = _summarize(report)
            job.state = "done"
        except Exception as exc:  # noqa: BLE001 - job fails, daemon lives
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            crash = self._looks_like_crash(registry)
        finally:
            job.finished_mono = time.monotonic()
            if lane is not None:
                self.lanes.release(lane, poisoned=crash)
            before = self.admission.breaker_state(job.tenant)
            self.admission.release(job.tenant, job.est_bytes,
                                   crash=crash, success=job.state == "done")
            after = self.admission.breaker_state(job.tenant)
            if crash and after == "open" and before != "open":
                self._m_breaker_opens.labels(tenant=job.tenant).inc()
                self.events.emit("breaker_open", tenant=job.tenant,
                                 job=job.id)
            self._m_finished.labels(tenant=job.tenant, app=cfg.app,
                                    state=job.state).inc()
            self.events.emit("job_done" if job.state == "done"
                             else "job_failed",
                             tenant=job.tenant, app=cfg.app, job=job.id,
                             error=job.error,
                             run_s=round(job.finished_mono
                                         - job.started_mono, 6))
            job.done.set()

    def _factory(self, cfg: RunConfig, lane: WarmLane):
        """Executor factory closing over a leased warm lane."""
        store = self.store if cfg.transport == "shm" else None

        def build(runtime: Runtime) -> ProcessExecutor:
            return ProcessExecutor(
                runtime,
                policy=cfg.policy if cfg.policy != "nonspec"
                else "conservative",
                workers=lane.workers,
                supervisor=lane.supervisor,
                store=store,
                steal=cfg.steal,
                dispatch_timeout_s=cfg.dispatch_timeout_s,
                max_task_retries=cfg.max_task_retries,
                retry_backoff_s=cfg.retry_backoff_s,
            )

        return build

    @staticmethod
    def _looks_like_crash(registry: MetricsRegistry) -> bool:
        """Did this job's failure involve killing workers?

        Breaker food is crash-type failure only: the job's own registry
        shows worker deaths (``procs_worker_crashes``) or tasks
        quarantined after repeated deaths. A clean ExperimentError (bad
        geometry, failed verification) never trips the breaker.
        """
        crashes = registry.get("procs_worker_crashes")
        if crashes is not None and any(
                s["value"] > 0 for s in crashes.snapshot_series()):
            return True
        quarantined = registry.get("procs_tasks_quarantined")
        return quarantined is not None and any(
            s["value"] > 0 for s in quarantined.snapshot_series())

"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro run --workload txt --policy balanced --blocks 256 [--gantt]
    repro run --executor procs --metrics-out run.prom       # live process pool
    repro run --events-out run.events.jsonl                 # flight recorder
    repro stats [--json] [--out FILE]                       # run + metrics dump
    repro trace --executor threads -o trace.json            # run + chrome trace
    repro explain run.events.jsonl [--version N]            # rollback post-mortem
    repro replay run.events.jsonl                           # deterministic replay
    repro replay run.events.jsonl --force-policy aggressive --diff  # counterfactual
    repro top run.metrics.json [--once]                     # live text dashboard
    repro bench [--emit-bench-json BENCH_huffman.json]      # perf baseline
    repro executors                                         # threads-vs-procs table
    repro transport                                         # pickle-vs-shm table
    repro fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9   # regenerate a figure
    repro claims                                            # headline table
    repro filter | kmeans                                   # Fig. 1 / §II-A apps
    repro compress FILE [-o OUT] / repro decompress FILE    # container codec
    repro list                                              # what's available

Set ``REPRO_SCALE=paper`` for full paper-scale geometry (slower).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import claims as claims_mod
from repro.experiments import fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, resources
from repro.experiments.runner import RunConfig, run_huffman

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
    "fig7": fig7, "fig8": fig8, "fig9": fig9, "resources": resources,
}


def _run_experiment(args: argparse.Namespace, *, trace: bool = False,
                    metrics_out: str | None = None,
                    events_out: str | None = None):
    """Shared run_huffman invocation for the run/stats/trace subcommands."""
    return run_huffman(config=RunConfig(
        workload=args.workload,
        n_blocks=args.blocks,
        platform=args.platform,
        io=args.io,
        policy=args.policy,
        speculative=not args.nonspec,
        step=args.step,
        verification=args.verification,
        verify_k=args.verify_k,
        tolerance=args.tolerance,
        seed=args.seed,
        trace=trace,
        executor=args.executor,
        transport=args.transport,
        fault_plan=args.fault_plan,
        pool=args.pool,
        workers=args.workers,
        steal=not args.no_steal,
        dispatch_timeout_s=args.dispatch_timeout_s,
        metrics_out=metrics_out,
        events_out=events_out,
    ))


def _cmd_run(args: argparse.Namespace) -> int:
    want_trace = args.gantt or args.trace_out is not None
    report = _run_experiment(args, trace=want_trace,
                             metrics_out=args.metrics_out,
                             events_out=args.events_out)
    s = report.summary
    print(f"run        : {report.label}")
    print(f"outcome    : {report.result.outcome}")
    print(f"avg latency: {s.avg_latency_us:,.0f} µs")
    print(f"max latency: {s.max_latency_us:,.0f} µs")
    print(f"runtime    : {s.completion_time_us:,.0f} µs")
    print(f"compression: {s.compression_ratio:.3f}x")
    print(f"rollbacks  : {s.rollbacks}   wasted encodes: {s.wasted_encodes}")
    print(f"utilisation: {report.utilisation:.1%}")
    print(f"round-trip : {'ok' if report.roundtrip_ok else 'FAILED'}")
    if args.gantt:
        from repro.metrics.traceview import ascii_gantt
        print()
        print(ascii_gantt(report.trace))
    if args.trace_out is not None:
        from repro.metrics.traceview import to_chrome_trace
        pathlib.Path(args.trace_out).write_text(to_chrome_trace(report.trace))
        print(f"chrome trace written to {args.trace_out}")
    if args.metrics_out is not None:
        from repro.obs.exporters import write_metrics
        fmt = write_metrics(args.metrics_out, report.metrics.snapshot(),
                            args.metrics_format)
        print(f"metrics snapshot ({fmt}) written to {args.metrics_out}")
    if args.events_out is not None:
        print(f"event log written to {args.events_out} "
              f"(inspect with: repro explain {args.events_out})")
    for warning in report.warnings or ():
        print(f"warning    : {warning}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct rollback cascades from an ``*.events.jsonl`` file."""
    from repro.obs.explain import explain_path
    print(explain_path(args.events, version=args.version))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a snapshot file or a live serve daemon."""
    if args.serve:
        from repro.obs.top import run_top_serve
        host, _, port = args.serve.rpartition(":")
        try:
            port_num = int(port)
        except ValueError:
            raise SystemExit(
                f"--serve wants HOST:PORT (got {args.serve!r})") from None
        return run_top_serve(host or "127.0.0.1", port_num,
                             once=args.once, interval_s=args.interval)
    if args.snapshot is None:
        raise SystemExit("repro top needs a snapshot file "
                         "or --serve HOST:PORT")
    from repro.obs.top import run_top
    return run_top(args.snapshot, once=args.once, interval_s=args.interval)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite; optionally emit the machine-readable doc."""
    import json as json_mod
    from repro.experiments.bench import render_bench, run_bench
    doc = run_bench(seed=args.seed, blocks=args.blocks,
                    quick=not args.full)
    print(render_bench(doc))
    if args.emit_bench_json is not None:
        pathlib.Path(args.emit_bench_json).write_text(
            json_mod.dumps(doc, indent=2) + "\n")
        print(f"bench doc written to {args.emit_bench_json}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one experiment and emit its metrics snapshot.

    Prints Prometheus text exposition by default (``--json`` for the JSON
    snapshot format); ``--out FILE`` writes to a file instead of stdout.
    """
    report = _run_experiment(args)
    from repro.obs.exporters import to_json_snapshot, to_prometheus_text, write_metrics
    snapshot = report.metrics.snapshot()
    if args.out is not None:
        fmt = write_metrics(args.out, snapshot, "json" if args.json else "prom")
        print(f"metrics snapshot ({fmt}) written to {args.out}")
    else:
        text = (to_json_snapshot(snapshot) if args.json
                else to_prometheus_text(snapshot))
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_trace_serve(args: argparse.Namespace) -> int:
    """Fetch a served job's distributed trace and render/export it."""
    import json as json_mod

    from repro.client import ServeClient
    from repro.metrics.traceview import spans_to_chrome_trace
    from repro.obs.spans import render_span_tree

    if not args.job:
        raise SystemExit("repro trace --serve requires --job JOB_ID")
    with ServeClient(args.host, port=_resolve_port(args)) as client:
        doc = client.trace(args.job)
    spans = doc.get("spans") or []
    print(f"{args.job}  trace {doc.get('trace_id')}  "
          f"state {doc.get('state')}  spans {len(spans)}")
    for line in render_span_tree(spans):
        print(line)
    if args.spans_json is not None:
        pathlib.Path(args.spans_json).write_text(
            json_mod.dumps(doc, indent=2) + "\n")
        print(f"span list written to {args.spans_json}")
    if args.out is not None:
        pathlib.Path(args.out).write_text(spans_to_chrome_trace(spans))
        print(f"chrome trace written to {args.out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment and export its trace (Chrome JSON and/or Gantt)."""
    if args.serve:
        return _cmd_trace_serve(args)
    from repro.metrics.traceview import ascii_gantt, to_chrome_trace
    report = _run_experiment(args, trace=True)
    if args.out is not None:
        pathlib.Path(args.out).write_text(to_chrome_trace(report.trace))
        print(f"chrome trace written to {args.out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.gantt or args.out is None:
        print(ascii_gantt(report.trace))
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    from repro.experiments.jobs import run_job
    report = run_job(RunConfig.for_app(
        "filter",
        n_blocks=args.blocks,
        speculative=not args.nonspec,
        step=args.step,
        tolerance=args.tolerance,
        seed=args.seed,
    ))
    print(f"outcome       : {report.result.outcome}")
    print(f"avg latency   : {report.avg_latency:,.0f} µs")
    print(f"runtime       : {report.completion_time:,.0f} µs")
    print(f"rollbacks     : {report.extras['rollbacks']}")
    print(f"response error: {report.extras['response_error']:.4f}")
    print(f"output        : {'ok' if report.extras['output_ok'] else 'FAILED'}")
    return 0


def _cmd_kmeans(args: argparse.Namespace) -> int:
    from repro.experiments.jobs import run_job
    report = run_job(RunConfig.for_app(
        "kmeans",
        n_blocks=args.blocks,
        speculative=not args.nonspec,
        step=args.step,
        tolerance=args.tolerance,
        drift_blocks=args.drift,
        seed=args.seed,
    ))
    print(f"outcome     : {report.result.outcome}")
    print(f"avg latency : {report.avg_latency:,.0f} µs")
    print(f"runtime     : {report.completion_time:,.0f} µs")
    print(f"rollbacks   : {report.extras['rollbacks']}")
    print(f"inertia     : {report.extras['inertia']:.4f}")
    print(f"labels      : {'ok' if report.extras['labels_ok'] else 'FAILED'}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.huffman.container import compress
    data = pathlib.Path(args.file).read_bytes()
    blob = compress(data)
    out = args.output or args.file + ".rhuf"
    pathlib.Path(out).write_bytes(blob)
    ratio = len(data) / len(blob) if blob else float("inf")
    print(f"{args.file}: {len(data):,} B -> {out}: {len(blob):,} B ({ratio:.3f}x)")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.huffman.container import decompress
    blob = pathlib.Path(args.file).read_bytes()
    data = decompress(blob)
    out = args.output or (args.file[:-5] if args.file.endswith(".rhuf")
                          else args.file + ".out")
    pathlib.Path(out).write_bytes(data)
    print(f"{args.file}: {len(blob):,} B -> {out}: {len(data):,} B")
    return 0


def _cmd_figure(name: str, args: argparse.Namespace) -> int:
    module = _FIGURES[name]
    result = module.run(seed=args.seed)
    print(result.render(charts=not args.no_charts))
    return 0


def _cmd_executors(args: argparse.Namespace) -> int:
    from repro.experiments.executor_bench import compare_executors, render_table
    names = (("sim", "threads", "procs") if args.executor == "all"
             else (args.executor,))
    timings = compare_executors(names, blocks=args.blocks,
                                block_kb=args.block_kb, workers=args.workers,
                                seed=args.seed)
    print(f"{args.blocks} x {args.block_kb} KB pure-Python histogram tasks, "
          f"{args.workers} workers")
    print(render_table(timings))
    return 0


def _cmd_transport(args: argparse.Namespace) -> int:
    from repro.experiments.transport_bench import render_table, run_transport_bench
    rows = run_transport_bench(blocks=args.blocks, workers=args.workers,
                               seed=args.seed)
    print(f"{args.blocks} x 4 KB txt blocks, {args.workers} workers "
          "(payload bytes = coordinator→worker pipe traffic)")
    print(render_table(rows))
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    print(claims_mod.render(claims_mod.run(seed=args.seed)))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.sre.registry import executor_names
    print("figures :", ", ".join(sorted(_FIGURES)))
    print("workloads: txt, bmp, pdf, markov")
    print("platforms: x86, cell")
    print("executors:", ", ".join(executor_names()))
    print("transports: pickle, shm")
    print("policies : nonspec, conservative, aggressive, balanced, fcfs, "
          "ratio, throttled")
    print("verification: every_k, optimistic, full")
    print("apps     : filter (Fig. 1), kmeans (§II-A)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Deterministically re-execute a recorded run (or a counterfactual)."""
    from repro.errors import ReplayDivergence, ReplayError
    from repro.obs.events import EventSchemaError
    from repro.sre.replay import render_diff, replay_path

    force = {k: v for k, v in {
        "policy": args.force_policy,
        "tolerance": args.force_tolerance,
        "step": args.force_step,
        "executor": args.force_executor,
    }.items() if v is not None}
    try:
        res = replay_path(args.events, force=force or None,
                          events_out=args.events_out)
    except ReplayDivergence as exc:
        print(f"replay DIVERGED: {exc}")
        return 1
    except (ReplayError, EventSchemaError, OSError) as exc:
        print(f"replay failed: {exc}")
        return 1
    rec = res.recorded
    rep = res.replayed
    if res.counterfactual:
        forced = ", ".join(f"{k}={v}" for k, v in sorted(force.items()))
        print(f"counterfactual replay of {args.events} (forcing {forced})")
        print(render_diff(rec, rep))
    else:
        print(f"replay_ok  : {args.events}")
        print(f"schedule   : {len(res.schedule)} gated decisions, "
              f"schedule_match={res.schedule_match}")
        print(f"outcome    : {rep.outcome}  (recorded: {rec.outcome})")
        print(f"output sha : {rep.output_sha256}")
        if args.diff:
            print()
            print(render_diff(rec, rep, labels=("recorded", "replayed")))
    if args.events_out is not None:
        print(f"replay event log written to {args.events_out}")
    return 0


def _resolve_port(args: argparse.Namespace) -> int:
    """--port wins; --port-file (written by `repro serve`) is the CI path."""
    if args.port is not None:
        return args.port
    if args.port_file is not None:
        with open(args.port_file, encoding="utf-8") as fh:
            return int(fh.read().strip())
    raise SystemExit("need --port or --port-file to find the daemon")


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.serve.server import ServeSettings, SpeculationServer

    settings = ServeSettings(
        host=args.host,
        port=args.port if args.port is not None else 0,
        job_workers=args.job_workers,
        max_tenant_jobs=args.max_tenant_jobs,
        max_tenant_bytes=args.max_tenant_bytes,
        queue_limit=args.queue_limit,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        max_lanes=args.max_lanes,
        events_out=args.events_out,
        metrics_out=args.metrics_out,
        metrics_interval_s=args.metrics_interval_s,
        port_file=args.port_file,
    )
    server = SpeculationServer(settings).start()
    print(f"repro serve listening on {settings.host}:{server.port} "
          f"(pid {os.getpid()})")
    server.serve_until_shutdown()
    print("repro serve stopped")
    return 0


def _cmd_worker_pool(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.sre.worker_pool import PoolSettings, WorkerPoolServer

    settings = PoolSettings(
        host=args.host,
        port=args.port if args.port is not None else 0,
        port_file=args.port_file,
        fault_plan=args.fault_plan,
        max_respawns=args.max_respawns,
        harvest_timeout_s=args.harvest_timeout_s,
        max_workers=args.max_workers,
        events_out=args.events_out,
    )
    server = WorkerPoolServer(settings).start()
    # SIGTERM (plain `kill`, CI teardown) must stop the pool cleanly so
    # buffered event/metric sinks flush — same exit path as the shutdown op.
    signal.signal(signal.SIGTERM,
                  lambda *_: server.shutdown_requested.set())
    print(f"repro worker-pool listening on {settings.host}:{server.port} "
          f"(pid {os.getpid()})")
    server.serve_until_shutdown()
    print("repro worker-pool stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.client import JobRejected, ServeClient, ServeError

    config: dict = {}
    if args.config_json:
        config.update(json.loads(args.config_json))
    config.setdefault("app", args.app)
    if args.app == "huffman":
        config.setdefault("workload", args.workload)
        config.setdefault("executor", args.executor)
        config.setdefault("transport", args.transport)
        if args.workers is not None:
            config.setdefault("workers", args.workers)
    if args.blocks is not None:
        config.setdefault("n_blocks", args.blocks)
    if args.nonspec:
        config.setdefault("speculative", False)
    config.setdefault("seed", args.seed)
    with ServeClient(args.host, port=_resolve_port(args)) as client:
        try:
            job_id = client.submit(config, tenant=args.tenant)
        except JobRejected as exc:
            print(f"rejected ({exc.reason}): {exc}")
            return 1
        if args.no_wait:
            print(job_id)
            return 0
        try:
            report = client.result(job_id, wait=True, timeout_s=args.timeout)
        except ServeError as exc:
            print(f"{job_id} failed: {exc}")
            return 1
    print(f"job        : {job_id}  (tenant {args.tenant})")
    print(f"label      : {report['label']}")
    print(f"outcome    : {report['outcome']}")
    print(f"output sha : {report['output_sha256']}")
    print(f"avg latency: {report['avg_latency']:.1f} us   "
          f"completion: {report['completion_time']:.1f} us")
    for key, value in sorted((report.get("extras") or {}).items()):
        if key == "live_arrivals_us":
            value = f"[{len(value)} arrivals]"
        print(f"{key:<11}: {value}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.client import ServeClient

    with ServeClient(args.host, port=_resolve_port(args)) as client:
        if args.shutdown:
            client.shutdown()
            print("shutdown requested")
            return 0
        rows = client.jobs()
        stats = client.stats() if args.stats else None
    if not rows:
        print("no jobs")
    for row in rows:
        line = (f"{row['job_id']:<10} {row['tenant']:<12} "
                f"{row['app']:<8} {row['state']:<8}")
        if "latency_s" in row:
            line += f" {row['latency_s']:.3f}s"
        if "error" in row:
            line += f"  {row['error']}"
        print(line)
    if stats is not None:
        adm = stats["admission"]
        print(f"\ninflight: {adm['inflight_total']}/{adm['queue_limit']}")
        for tenant, t in adm["tenants"].items():
            print(f"  {tenant:<12} jobs={t['inflight_jobs']} "
                  f"bytes={t['inflight_bytes']} breaker={t['breaker']} "
                  f"rejections={t['rejections']}")
        for lane in stats["lanes"]:
            print(f"  lane {lane['tenant']}/{lane['workers']}w "
                  f"in_use={lane['in_use']} served={lane['jobs_served']}")
        print(f"  store refs={stats['store']['live_refs']} "
              f"segments={stats['store']['live_segments']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser.

    Exposed separately from :func:`main` so tooling (e.g.
    ``tools/check_doc_links.py``) can introspect the registered
    subcommand names without running anything.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tolerant value speculation in coarse-grain streaming "
                    "computations (IPPS 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_experiment_args(p: argparse.ArgumentParser, blocks: int = 256) -> None:
        """Knobs shared by the run / stats / trace subcommands."""
        p.add_argument("--workload", default="txt",
                       choices=["txt", "bmp", "pdf", "markov"])
        p.add_argument("--blocks", type=int, default=blocks)
        from repro.sre.registry import executor_names
        p.add_argument("--executor", default="sim",
                       choices=list(executor_names()),
                       help="back-end: simulated clock (paper figures), "
                            "live thread pool, or live process pool")
        p.add_argument("--transport", default="pickle",
                       choices=["pickle", "shm"],
                       help="payload transport: pickle block bytes per "
                            "task, or shared-memory blocks + refs "
                            "(zero-copy on the procs back-end)")
        p.add_argument("--platform", default="x86", choices=["x86", "cell"])
        p.add_argument("--io", default="disk", choices=["disk", "socket"])
        p.add_argument("--policy", default="balanced",
                       choices=["nonspec", "conservative", "aggressive",
                                "balanced", "fcfs"])
        p.add_argument("--nonspec", action="store_true",
                       help="disable speculation entirely")
        p.add_argument("--step", type=int, default=1)
        p.add_argument("--verification", default="every_k",
                       choices=["every_k", "optimistic", "full"])
        p.add_argument("--verify-k", type=int, default=8, dest="verify_k")
        p.add_argument("--tolerance", type=float, default=0.01)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--workers", type=int, default=None,
                       help="worker seats for the live back-ends "
                            "(threads/procs/dist)")
        p.add_argument("--pool", default=None, metavar="HOST:PORT",
                       help="remote worker-pool rendezvous for the dist "
                            "back-end (a running `repro worker-pool`)")
        p.add_argument("--fault", default=None, dest="fault_plan",
                       metavar="PLAN",
                       help="inject deterministic worker faults on the "
                            "procs/dist back-ends, e.g. 'kill@3' or "
                            "'hang@2:w1,kill@1!' (see docs/fault-tolerance.md)")
        p.add_argument("--no-steal", action="store_true", dest="no_steal",
                       help="pin claimed payloads to the seat that batched "
                            "them instead of letting idle seats steal from "
                            "a straggler's deque (procs back-end)")
        p.add_argument("--dispatch-timeout", type=float, default=60.0,
                       dest="dispatch_timeout_s", metavar="SECONDS",
                       help="per-payload reply deadline on the procs "
                            "back-end (never scaled by batch size)")

    p_run = sub.add_parser("run", help="run one Huffman experiment")
    add_experiment_args(p_run)
    p_run.add_argument("--gantt", action="store_true",
                       help="print an ASCII gantt of the run")
    p_run.add_argument("--trace-out", default=None, dest="trace_out",
                       help="write a chrome://tracing JSON to this path")
    p_run.add_argument("--metrics-out", default=None, dest="metrics_out",
                       help="write a metrics snapshot to this path "
                            "(.json → JSON, else Prometheus text); long "
                            "runs rewrite it periodically while running")
    p_run.add_argument("--metrics-format", default=None, dest="metrics_format",
                       choices=["prom", "json"],
                       help="force the --metrics-out format instead of "
                            "inferring it from the extension")
    p_run.add_argument("--events-out", default=None, dest="events_out",
                       help="write the flight-recorder event log (JSONL) to "
                            "this path; feed it to `repro explain`")
    p_run.set_defaults(fn=_cmd_run)

    p_stats = sub.add_parser(
        "stats",
        help="run one experiment and print/export its metrics snapshot")
    add_experiment_args(p_stats, blocks=64)
    p_stats.add_argument("--json", action="store_true",
                         help="emit the JSON snapshot format instead of "
                              "Prometheus text exposition")
    p_stats.add_argument("-o", "--out", default=None,
                         help="write to this file instead of stdout")
    p_stats.set_defaults(fn=_cmd_stats)

    p_trace = sub.add_parser(
        "trace",
        help="run one experiment and export its trace (chrome JSON / gantt)")
    add_experiment_args(p_trace, blocks=64)
    p_trace.add_argument("-o", "--out", default=None,
                         help="write chrome://tracing JSON to this path "
                              "(omitted: print the ASCII gantt)")
    p_trace.add_argument("--gantt", action="store_true",
                         help="also print the ASCII gantt when writing a file")
    p_trace.add_argument("--serve", action="store_true",
                         help="fetch a served job's distributed trace from "
                              "a running daemon instead of running an "
                              "experiment (needs --job and --port/"
                              "--port-file; see docs/tracing.md)")
    p_trace.add_argument("--job", default=None,
                         help="job id to trace (with --serve)")
    p_trace.add_argument("--host", default="127.0.0.1",
                         help="daemon host (with --serve)")
    p_trace.add_argument("--port", type=int, default=None,
                         help="daemon port (with --serve)")
    p_trace.add_argument("--port-file", default=None, dest="port_file",
                         help="read the daemon port from this file "
                              "(with --serve)")
    p_trace.add_argument("--spans-json", default=None, dest="spans_json",
                         help="with --serve: also write the raw span list "
                              "(JSON) to this path")
    p_trace.set_defaults(fn=_cmd_trace)

    p_filter = sub.add_parser("filter", help="run the Fig. 1 filter application")
    p_filter.add_argument("--blocks", type=int, default=48)
    p_filter.add_argument("--nonspec", action="store_true")
    p_filter.add_argument("--step", type=int, default=2)
    p_filter.add_argument("--tolerance", type=float, default=0.02)
    p_filter.add_argument("--seed", type=int, default=0)
    p_filter.set_defaults(fn=_cmd_filter)

    p_km = sub.add_parser("kmeans", help="run the speculative k-means application")
    p_km.add_argument("--blocks", type=int, default=48)
    p_km.add_argument("--nonspec", action="store_true")
    p_km.add_argument("--step", type=int, default=2)
    p_km.add_argument("--tolerance", type=float, default=0.05)
    p_km.add_argument("--drift", type=int, default=0,
                      help="blocks of early cluster drift (provokes rollbacks)")
    p_km.add_argument("--seed", type=int, default=0)
    p_km.set_defaults(fn=_cmd_kmeans)

    p_comp = sub.add_parser("compress", help="compress a file to a .rhuf container")
    p_comp.add_argument("file")
    p_comp.add_argument("-o", "--output", default=None)
    p_comp.set_defaults(fn=_cmd_compress)

    p_dec = sub.add_parser("decompress", help="decompress a .rhuf container")
    p_dec.add_argument("file")
    p_dec.add_argument("-o", "--output", default=None)
    p_dec.set_defaults(fn=_cmd_decompress)

    for name in sorted(_FIGURES):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-charts", action="store_true")
        p.set_defaults(fn=lambda a, n=name: _cmd_figure(n, a))

    p_explain = sub.add_parser(
        "explain",
        help="post-mortem: reconstruct rollback cascades from an event log")
    p_explain.add_argument("events",
                           help="*.events.jsonl file from `repro run "
                                "--events-out`")
    p_explain.add_argument("--version", type=int, default=None,
                           help="only explain rollbacks of this speculation "
                                "version")
    p_explain.set_defaults(fn=_cmd_explain)

    p_replay = sub.add_parser(
        "replay",
        help="deterministically re-execute a recorded run from its event "
             "log (time-travel debugging; see docs/replay.md)")
    p_replay.add_argument("events",
                          help="*.events.jsonl file from `repro run "
                               "--events-out` (must carry the log_header "
                               "schema record)")
    p_replay.add_argument("--force-policy", default=None, dest="force_policy",
                          choices=["nonspec", "conservative", "aggressive",
                                   "balanced", "fcfs"],
                          help="counterfactual: re-run under this dispatch "
                               "policy instead of the recorded one")
    p_replay.add_argument("--force-tolerance", type=float, default=None,
                          dest="force_tolerance",
                          help="counterfactual: re-run with this error "
                               "tolerance")
    p_replay.add_argument("--force-step", type=int, default=None,
                          dest="force_step",
                          help="counterfactual: re-run with this speculation "
                               "step")
    p_replay.add_argument("--force-executor", default=None,
                          dest="force_executor",
                          help="counterfactual: re-run on this executor "
                               "back-end")
    p_replay.add_argument("--diff", action="store_true",
                          help="print the recorded-vs-replayed cascade "
                               "delta table (rollbacks, wasted µs, shm "
                               "churn); implied for counterfactual runs")
    p_replay.add_argument("--events-out", default=None, dest="events_out",
                          help="also record the replayed run's event log "
                               "to this path")
    p_replay.set_defaults(fn=_cmd_replay)

    p_top = sub.add_parser(
        "top",
        help="live text dashboard over a metrics snapshot file or a "
             "running serve daemon")
    p_top.add_argument("snapshot", nargs="?", default=None,
                       help="JSON snapshot kept fresh by `repro run "
                            "--metrics-out run.metrics.json` (long runs "
                            "rewrite it periodically); omit with --serve")
    p_top.add_argument("--serve", default=None, metavar="HOST:PORT",
                       help="poll a live daemon's stats op instead of a "
                            "file: per-tenant job rates, breaker states, "
                            "lane occupancy, stage p50/p95")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit (CI / scripting)")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh interval in seconds")
    p_top.set_defaults(fn=_cmd_top)

    p_bench = sub.add_parser(
        "bench",
        help="run the perf baseline suite (see tools/bench_gate.py)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--blocks", type=int, default=64)
    p_bench.add_argument("--full", action="store_true",
                         help="more timed repeats for the live procs+shm "
                              "wall-clock leg (slower, steadier numbers; "
                              "the leg itself always runs and is gated)")
    p_bench.add_argument("--emit-bench-json", default=None,
                         dest="emit_bench_json",
                         help="write the machine-readable bench doc here "
                              "(compare with tools/bench_gate.py)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_exec = sub.add_parser(
        "executors",
        help="benchmark the executor back-ends (threads-vs-procs speedup)")
    p_exec.add_argument("--executor", default="all",
                        choices=["sim", "threads", "procs", "all"])
    p_exec.add_argument("--blocks", type=int, default=32)
    p_exec.add_argument("--block-kb", type=int, default=256, dest="block_kb")
    p_exec.add_argument("--workers", type=int, default=4)
    p_exec.add_argument("--seed", type=int, default=0)
    p_exec.set_defaults(fn=_cmd_executors)

    p_tr = sub.add_parser(
        "transport",
        help="benchmark payload transports (pickle vs shared memory)")
    p_tr.add_argument("--blocks", type=int, default=64)
    p_tr.add_argument("--workers", type=int, default=4)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.set_defaults(fn=_cmd_transport)

    p_claims = sub.add_parser("claims", help="headline paper-vs-measured table")
    p_claims.add_argument("--seed", type=int, default=0)
    p_claims.set_defaults(fn=_cmd_claims)

    p_list = sub.add_parser("list", help="list figures and options")
    p_list.set_defaults(fn=_cmd_list)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived speculation service: warm worker pools + shm "
             "arenas, jobs over a local socket (see docs/service.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=None,
                         help="listen port (default: ephemeral; see "
                              "--port-file)")
    p_serve.add_argument("--port-file", default=None, dest="port_file",
                         help="write the bound port here once listening "
                              "(the CI / scripting rendezvous)")
    p_serve.add_argument("--job-workers", type=int, default=2,
                         dest="job_workers",
                         help="concurrent running jobs daemon-wide")
    p_serve.add_argument("--max-tenant-jobs", type=int, default=2,
                         dest="max_tenant_jobs",
                         help="per-tenant bulkhead: concurrent jobs")
    p_serve.add_argument("--max-tenant-bytes", type=int, default=64 << 20,
                         dest="max_tenant_bytes",
                         help="per-tenant bulkhead: in-flight payload bytes")
    p_serve.add_argument("--queue-limit", type=int, default=8,
                         dest="queue_limit",
                         help="daemon-wide in-flight cap (backpressure past "
                              "it: submissions get queue_full)")
    p_serve.add_argument("--breaker-threshold", type=int, default=2,
                         dest="breaker_threshold",
                         help="consecutive worker-killing failures that "
                              "open a tenant's circuit breaker")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         dest="breaker_cooldown", metavar="SECONDS",
                         help="open-breaker cooldown before one half-open "
                              "probe job is admitted")
    p_serve.add_argument("--max-lanes", type=int, default=4,
                         dest="max_lanes",
                         help="warm worker-pool lanes kept alive (excess "
                              "procs jobs run cold)")
    p_serve.add_argument("--events-out", default=None, dest="events_out",
                         help="write the daemon's lifecycle event log "
                              "(JSONL) to this path")
    p_serve.add_argument("--metrics-out", default=None, dest="metrics_out",
                         help="write the daemon-wide metrics snapshot here "
                              "periodically (.json → JSON, else Prometheus "
                              "text); `repro top FILE` can tail it")
    p_serve.add_argument("--metrics-interval-s", type=float, default=5.0,
                         dest="metrics_interval_s", metavar="SECONDS",
                         help="seconds between --metrics-out snapshots")
    p_serve.set_defaults(fn=_cmd_serve)

    p_pool = sub.add_parser(
        "worker-pool",
        help="host a worker pool for the dist back-end: a "
             "WorkerSupervisor behind a TCP socket (see "
             "docs/distributed.md)")
    p_pool.add_argument("--host", default="127.0.0.1")
    p_pool.add_argument("--port", type=int, default=None,
                        help="listen port (default: ephemeral; see "
                             "--port-file)")
    p_pool.add_argument("--port-file", default=None, dest="port_file",
                        help="write the bound port here once listening "
                             "(the CI / scripting rendezvous)")
    p_pool.add_argument("--fault", default=None, dest="fault_plan",
                        metavar="PLAN",
                        help="default chaos plan armed on every attached "
                             "session's workers when the coordinator "
                             "ships none, e.g. 'kill@3' (see "
                             "docs/fault-tolerance.md)")
    p_pool.add_argument("--max-workers", type=int, default=16,
                        dest="max_workers",
                        help="cap on seats one attach may request")
    p_pool.add_argument("--max-respawns", type=int, default=3,
                        dest="max_respawns",
                        help="replacement processes per seat before it "
                             "degrades")
    p_pool.add_argument("--harvest-timeout", type=float, default=2.0,
                        dest="harvest_timeout_s", metavar="SECONDS",
                        help="shutdown grace per worker for the final "
                             "metrics/events harvest")
    p_pool.add_argument("--events-out", default=None, dest="events_out",
                        help="write the pool's lifecycle event log "
                             "(JSONL) to this path")
    p_pool.set_defaults(fn=_cmd_worker_pool)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running `repro serve` daemon")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=None)
    p_submit.add_argument("--port-file", default=None, dest="port_file",
                          help="read the daemon port from this file "
                               "(written by `repro serve --port-file`)")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--app", default="huffman",
                          choices=["huffman", "filter", "kmeans"])
    p_submit.add_argument("--workload", default="txt",
                          choices=["txt", "bmp", "pdf", "markov"])
    p_submit.add_argument("--blocks", type=int, default=None)
    p_submit.add_argument("--executor", default="sim",
                          help="huffman only: sim, threads or procs (procs "
                               "runs on a warm daemon lane)")
    p_submit.add_argument("--transport", default="pickle",
                          choices=["pickle", "shm"],
                          help="shm uses the daemon's warm arenas")
    p_submit.add_argument("--workers", type=int, default=None)
    p_submit.add_argument("--nonspec", action="store_true")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--config-json", default=None, dest="config_json",
                          help="raw RunConfig keywords as JSON (wins over "
                               "the flags above)")
    p_submit.add_argument("--no-wait", action="store_true", dest="no_wait",
                          help="print the job id and exit instead of "
                               "waiting for the result")
    p_submit.add_argument("--timeout", type=float, default=120.0,
                          help="seconds to wait for the result")
    p_submit.set_defaults(fn=_cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="inspect (or shut down) a running `repro serve` daemon")
    p_jobs.add_argument("--host", default="127.0.0.1")
    p_jobs.add_argument("--port", type=int, default=None)
    p_jobs.add_argument("--port-file", default=None, dest="port_file")
    p_jobs.add_argument("--stats", action="store_true",
                        help="also print admission / breaker / lane / "
                             "arena state")
    p_jobs.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to stop")
    p_jobs.set_defaults(fn=_cmd_jobs)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

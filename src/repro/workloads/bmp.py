"""BMP workload — header transient, then stationary image payload.

A Windows bitmap opens with headers, palette tables and dithered top-of-
image rows whose byte statistics differ from the smooth payload that
dominates the file. Modelled as a mixture whose "header" weight decays
linearly to zero across an early transient region; afterwards the
distribution is stationary.

Consequence (matching Fig. 5b): a tree speculated from a prefix *inside*
the transient misprices the stationary payload by more than the 1 %
tolerance and rolls back; speculating once the prefix extends past the
transient survives every later check. The transient fraction and header
weight below are calibrated against the default experiment geometry
(4 KB blocks, 16:1 reduce → one update per 64 KB) so the step-size
threshold lands at 8 updates, as in the paper; the calibration tests pin
this.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import make_rng
from repro.workloads.base import (
    Workload,
    gaussian_distribution,
    mix_distributions,
    sample_bytes,
    uniform_distribution,
)

__all__ = ["BmpWorkload"]


class BmpWorkload(Workload):
    """Header-then-gradient bitmap stand-in (paper parses 2 MB of it)."""

    name = "bmp"
    default_bytes = 2 * 1024 * 1024

    def __init__(
        self,
        transient_fraction: float = 0.16,
        header_weight: float = 0.55,
        center: float = 128.0,
        sigma: float = 26.0,
        chunk: int = 4096,
    ) -> None:
        if not (0.0 < transient_fraction < 1.0):
            raise WorkloadError("transient_fraction must be in (0, 1)")
        if not (0.0 <= header_weight <= 1.0):
            raise WorkloadError("header_weight must be in [0, 1]")
        self.transient_fraction = transient_fraction
        self.header_weight = header_weight
        self.chunk = chunk
        #: stationary payload: smooth image pixels.
        self.image = gaussian_distribution(center, sigma)
        #: header/palette bytes: spread across the whole byte range.
        self.header = uniform_distribution()

    def generate(self, n_bytes: int, seed: int | np.random.Generator = 0) -> bytes:
        rng = make_rng(seed)
        out = np.empty(n_bytes, dtype=np.uint8)
        transient_end = self.transient_fraction * n_bytes
        pos = 0
        while pos < n_bytes:
            size = min(self.chunk, n_bytes - pos)
            if pos >= transient_end:
                w = 0.0
            else:
                # Header influence decays linearly across the transient.
                w = self.header_weight * (1.0 - pos / transient_end)
            probs = mix_distributions(self.image, self.header, w)
            out[pos : pos + size] = sample_bytes(probs, size, rng)
            pos += size
        return out.tobytes()

"""Workload interface and byte-distribution helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import make_rng

__all__ = [
    "Workload",
    "zipf_distribution",
    "gaussian_distribution",
    "uniform_distribution",
    "mix_distributions",
    "sample_bytes",
]


class Workload:
    """A named generator of synthetic input bytes."""

    name = "workload"
    #: paper sizes: TXT/PDF parse 4 MB, BMP 2 MB (§V-A).
    default_bytes = 4 * 1024 * 1024

    def generate(self, n_bytes: int, seed: int | np.random.Generator = 0) -> bytes:
        """Produce ``n_bytes`` of data; same seed → same bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workload {self.name}>"


def _normalise(p: np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.shape != (256,):
        raise WorkloadError(f"distribution must have 256 entries, got {p.shape}")
    if np.any(p < 0):
        raise WorkloadError("distribution has negative mass")
    total = p.sum()
    if total <= 0:
        raise WorkloadError("distribution has zero mass")
    return p / total


def zipf_distribution(symbols: np.ndarray, exponent: float = 1.1) -> np.ndarray:
    """Zipf law over an explicit symbol set, zero elsewhere.

    ``symbols[i]`` gets mass ∝ 1/(i+1)^exponent — order encodes rank.
    """
    if exponent <= 0:
        raise WorkloadError("zipf exponent must be positive")
    p = np.zeros(256, dtype=np.float64)
    ranks = np.arange(1, len(symbols) + 1, dtype=np.float64)
    p[np.asarray(symbols, dtype=np.int64)] = ranks ** -exponent
    return _normalise(p)


def gaussian_distribution(center: float, sigma: float, floor: float = 1e-4) -> np.ndarray:
    """Discretised Gaussian over byte values (smooth-image pixel model)."""
    if sigma <= 0:
        raise WorkloadError("sigma must be positive")
    x = np.arange(256, dtype=np.float64)
    p = np.exp(-0.5 * ((x - center) / sigma) ** 2) + floor
    return _normalise(p)


def uniform_distribution() -> np.ndarray:
    """Uniform over all 256 byte values (compressed-stream model)."""
    return np.full(256, 1.0 / 256.0)


def mix_distributions(p: np.ndarray, q: np.ndarray, w: float) -> np.ndarray:
    """Convex mixture ``(1-w)·p + w·q``."""
    if not (0.0 <= w <= 1.0):
        raise WorkloadError(f"mixture weight {w} outside [0, 1]")
    return _normalise((1.0 - w) * np.asarray(p) + w * np.asarray(q))


def sample_bytes(probs: np.ndarray, n: int, rng) -> np.ndarray:
    """Draw ``n`` bytes i.i.d. from a distribution (vectorised inverse-CDF)."""
    if n < 0:
        raise WorkloadError("sample size must be non-negative")
    gen = make_rng(rng)
    cdf = np.cumsum(_normalise(probs))
    cdf[-1] = 1.0  # guard against fp undershoot
    u = gen.random(n)
    return np.searchsorted(cdf, u, side="right").astype(np.uint8)

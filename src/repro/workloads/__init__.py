"""Synthetic workload generators.

Stand-ins for the paper's three input files (e-book TXT, Windows BMP, PDF —
§V-A). What the experiments actually depend on is each file's *prefix
histogram drift*: how a tree built from an early prefix prices against trees
built from longer prefixes (the exact quantity the runtime's check task
measures). The generators control that drift explicitly:

* :class:`~repro.workloads.text.TextWorkload` — stationary Zipf over ~70
  printable symbols; prefix trees are good immediately (no rollbacks).
* :class:`~repro.workloads.bmp.BmpWorkload` — header/palette transient then
  a stationary smooth-image distribution; early speculation rolls back,
  speculation past the transient survives (Fig. 5b threshold).
* :class:`~repro.workloads.pdf.PdfWorkload` — alternating dictionary/stream
  sections whose mix drifts deep into the file; rollbacks persist until
  large step sizes, and check errors cross the 1 %/2 %/5 % margins at
  different times (Fig. 5c, Fig. 9).

:mod:`~repro.workloads.calibration` computes drift/check-error profiles
offline, used both to tune the generators and to pin their behaviour in
tests.
"""

from repro.workloads.base import (
    Workload,
    gaussian_distribution,
    mix_distributions,
    sample_bytes,
    uniform_distribution,
    zipf_distribution,
)
from repro.workloads.text import TextWorkload
from repro.workloads.bmp import BmpWorkload
from repro.workloads.markov import MarkovTextWorkload
from repro.workloads.pdf import PdfWorkload
from repro.workloads.calibration import check_error_profile, first_safe_update, prefix_histograms
from repro.workloads.registry import get_workload, WORKLOADS

__all__ = [
    "Workload",
    "zipf_distribution",
    "gaussian_distribution",
    "uniform_distribution",
    "mix_distributions",
    "sample_bytes",
    "TextWorkload",
    "BmpWorkload",
    "MarkovTextWorkload",
    "PdfWorkload",
    "check_error_profile",
    "first_safe_update",
    "prefix_histograms",
    "get_workload",
    "WORKLOADS",
]

"""Workload registry — the paper's three files by name."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.bmp import BmpWorkload
from repro.workloads.markov import MarkovTextWorkload
from repro.workloads.pdf import PdfWorkload
from repro.workloads.text import TextWorkload

__all__ = ["WORKLOADS", "get_workload"]

WORKLOADS: dict[str, type[Workload]] = {
    "txt": TextWorkload,
    "bmp": BmpWorkload,
    "pdf": PdfWorkload,
    "markov": MarkovTextWorkload,
}


def get_workload(name: str) -> Workload:
    """Instantiate a workload by its paper name (txt / bmp / pdf)."""
    try:
        return WORKLOADS[name.lower()]()
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None

"""PDF workload — alternating dictionary/stream sections with deep drift.

A PDF interleaves low-entropy object dictionaries (ASCII tokens) with
high-entropy stream objects. The stream share of the interleave *drifts
upward* across the first part of the file — front matter, page trees and
font dictionaries come first, the big content/image streams later — so the
prefix histogram keeps moving until well past the quarter mark, much deeper
than the BMP's short header transient.

Structure: fixed 16 KB periods, each split deterministically into a
dictionary part and a stream part; the stream fraction follows a linear
ramp ending at ``ramp_fraction`` of the file. Deterministic interleaving
(rather than Bernoulli section types) keeps the prefix-drift profile smooth
and seed-stable, which the experiments' rollback thresholds depend on.

Calibrated behaviour at paper geometry (4 MB, 4 KB blocks, 16:1 reduce →
64 updates), pinned by the workload tests:

* trees from early prefixes fail the 1 % check quickly but stay within 5 %
  (Fig. 9's 5 % margin commits);
* the error of the *first* tree crosses 2 % only in mid-file — a 2 % margin
  discovers the problem late and pays a much larger rollback (Fig. 9's
  "detect errors early" lesson);
* speculation becomes rollback-free only around step 16 (Fig. 5c knee),
  twice the BMP's threshold.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import make_rng
from repro.workloads.base import (
    Workload,
    mix_distributions,
    sample_bytes,
    uniform_distribution,
    zipf_distribution,
)

__all__ = ["PdfWorkload"]

_DICT_SYMBOLS = np.frombuffer(
    b" /<>[]()0123456789objendstrmRTfalsenuli.+-\\ABCDEFPpxyzwkqghc",
    dtype=np.uint8,
)


class PdfWorkload(Workload):
    """Drifting dictionary/stream mix (paper parses 4 MB of it)."""

    name = "pdf"
    default_bytes = 4 * 1024 * 1024

    def __init__(
        self,
        stream_share_start: float = 0.18,
        stream_share_end: float = 0.60,
        ramp_fraction: float = 0.30,
        period: int = 16 * 1024,
        chunk: int = 4096,
    ) -> None:
        if not (0.0 <= stream_share_start <= 1.0 and 0.0 <= stream_share_end <= 1.0):
            raise WorkloadError("stream shares must be in [0, 1]")
        if not (0.0 < ramp_fraction <= 1.0):
            raise WorkloadError("ramp_fraction must be in (0, 1]")
        if period < 2 * chunk:
            raise WorkloadError("period must be at least two chunks")
        self.stream_share_start = stream_share_start
        self.stream_share_end = stream_share_end
        self.ramp_fraction = ramp_fraction
        self.period = period
        self.chunk = chunk
        # Dictionary sections keep a whiff of binary (escaped strings,
        # inline data); streams keep ASCII markers — light cross-mixes.
        dictionary = zipf_distribution(_DICT_SYMBOLS, exponent=0.9)
        stream = uniform_distribution()
        self.dictionary = mix_distributions(dictionary, stream, 0.08)
        self.stream = mix_distributions(stream, dictionary, 0.08)

    def stream_share(self, pos: float, n_bytes: int) -> float:
        """Stream fraction of the period starting at byte ``pos``."""
        ramp_end = self.ramp_fraction * n_bytes
        if pos >= ramp_end:
            return self.stream_share_end
        t = pos / ramp_end
        return self.stream_share_start + t * (
            self.stream_share_end - self.stream_share_start
        )

    def generate(self, n_bytes: int, seed: int | np.random.Generator = 0) -> bytes:
        rng = make_rng(seed)
        out = np.empty(n_bytes, dtype=np.uint8)
        pos = 0
        while pos < n_bytes:
            period = min(self.period, n_bytes - pos)
            share = self.stream_share(pos, n_bytes)
            dict_len = int(round((1.0 - share) * period))
            for probs, length in ((self.dictionary, dict_len), (self.stream, period - dict_len)):
                taken = 0
                while taken < length:
                    size = min(self.chunk, length - taken)
                    out[pos : pos + size] = sample_bytes(probs, size, rng)
                    pos += size
                    taken += size
        return out.tobytes()

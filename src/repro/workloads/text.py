"""TXT workload — stationary e-book-like text.

"Text files use only around 70 characters" (§IV-A); frequencies follow a
Zipf-like law and are stationary across the file, so a tree built from any
reasonable prefix compresses the whole file within a fraction of a percent
of optimal — the paper's no-rollback scenario.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import make_rng
from repro.workloads.base import Workload, sample_bytes, zipf_distribution

__all__ = ["TextWorkload"]

# English-ish symbol ranking: space and 'e' on top, then letters by
# frequency, punctuation, digits, capitals — ~70 distinct byte values.
_RANKED = (
    " etaoinshrdlcumwfgypbvkjxqz"
    ".,;:!?'\"()-\n"
    "0123456789"
    "ETAOINSHRDLCUMWFGYPBVK"
)


class TextWorkload(Workload):
    """Stationary Zipf text (the paper's e-book stand-in)."""

    name = "txt"

    def __init__(self, exponent: float = 1.05) -> None:
        symbols = np.frombuffer(_RANKED.encode("ascii"), dtype=np.uint8)
        # Deduplicate while preserving rank order (defensive; the ranked
        # string is built to be duplicate-free).
        _, first = np.unique(symbols, return_index=True)
        self.symbols = symbols[np.sort(first)]
        self.probs = zipf_distribution(self.symbols, exponent)

    def generate(self, n_bytes: int, seed: int | np.random.Generator = 0) -> bytes:
        rng = make_rng(seed)
        return sample_bytes(self.probs, n_bytes, rng).tobytes()

"""Order-1 Markov text workload.

The plain :class:`~repro.workloads.text.TextWorkload` samples characters
independently; real e-book text has strong bigram correlations. This
generator draws from a synthetic order-1 Markov chain over the printable
symbol set: each symbol's successor distribution is a personalised Zipf
re-ranking, seeded deterministically per symbol.

For Huffman (a memoryless code) only the *stationary marginal* matters, so
this workload behaves like TXT in the experiments — it exists to show (and
test) that correlation structure does not disturb the speculation
machinery, and as a more honest stand-in when examples want "text".
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import make_rng
from repro.workloads.base import Workload
from repro.workloads.text import TextWorkload

__all__ = ["MarkovTextWorkload"]


class MarkovTextWorkload(Workload):
    """Correlated text via an order-1 Markov chain over ~70 symbols."""

    name = "markov"

    def __init__(self, exponent: float = 1.05, mixing: float = 0.4,
                 chunk: int = 65536) -> None:
        if not (0.0 < mixing <= 1.0):
            raise WorkloadError("mixing must be in (0, 1]")
        base = TextWorkload(exponent=exponent)
        self.symbols = base.symbols
        n = len(self.symbols)
        marginal = base.probs[self.symbols]
        marginal = marginal / marginal.sum()
        # Row s: (1-mixing)·(spike toward a per-symbol preferred successor
        # ordering) + mixing·marginal. Derived deterministically from the
        # symbol index so the chain itself is seed-independent.
        rows = np.empty((n, n), dtype=np.float64)
        for s in range(n):
            perm = np.roll(np.arange(n), s * 7 % n)
            ranked = marginal[perm]
            rows[s] = (1.0 - mixing) * ranked + mixing * marginal
            rows[s] /= rows[s].sum()
        self.transition = rows
        self._cdf = np.cumsum(rows, axis=1)
        self._cdf[:, -1] = 1.0
        self.marginal = marginal
        self.chunk = chunk

    def generate(self, n_bytes: int, seed: int | np.random.Generator = 0) -> bytes:
        rng = make_rng(seed)
        n = len(self.symbols)
        out = np.empty(n_bytes, dtype=np.int64)
        state = int(rng.integers(0, n))
        pos = 0
        # Chunked sampling: draw uniforms in bulk, walk the chain in Python
        # over the chunk (the chain is inherently sequential).
        while pos < n_bytes:
            size = min(self.chunk, n_bytes - pos)
            u = rng.random(size)
            cdf = self._cdf
            for k in range(size):
                state = int(np.searchsorted(cdf[state], u[k], side="right"))
                if state >= n:  # pragma: no cover - fp guard
                    state = n - 1
                out[pos + k] = state
            pos += size
        return self.symbols[out].tobytes()

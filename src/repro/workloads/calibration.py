"""Calibration utilities — prefix-drift and check-error profiles.

These functions replicate, offline and without any runtime, exactly what
the speculation check measures during a run: build a tree from the prefix
at update *b*, price it at every later update *j* against a fresh tree on
the prefix histogram of *j*. The generators were tuned against these
profiles and the workload tests pin them, so experiment-level behaviour
(which step sizes roll back, which tolerances survive) is anchored to an
artifact checked in CI rather than to luck.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.huffman.checkers import compression_size_error
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree

__all__ = ["prefix_histograms", "check_error_profile", "first_safe_update"]


def prefix_histograms(data: bytes, block_size: int, reduce_ratio: int) -> list[np.ndarray]:
    """Histogram of each reduce-update prefix.

    Entry ``j`` (0-based) is the histogram of the first ``(j+1) · ratio``
    blocks — the value the ``j``-th reduce task hands to the speculation
    manager. The last entry covers the whole input.
    """
    if block_size < 1 or reduce_ratio < 1:
        raise WorkloadError("block_size and reduce_ratio must be >= 1")
    n = len(data)
    if n == 0:
        raise WorkloadError("empty input")
    step = block_size * reduce_ratio
    hists: list[np.ndarray] = []
    running = np.zeros(256, dtype=np.int64)
    pos = 0
    while pos < n:
        end = min(pos + step, n)
        running = running + byte_histogram(data[pos:end])
        hists.append(running.copy())
        pos = end
    return hists


def check_error_profile(
    data: bytes,
    block_size: int = 4096,
    reduce_ratio: int = 16,
    base_update: int = 1,
) -> np.ndarray:
    """Check errors a tree speculated at ``base_update`` would see later.

    ``base_update`` is 1-based like the manager's update indices (update 0
    = the first single-block count histogram). Returns the error at every
    later update ``base_update+1 .. M`` (the last entry is the final
    check's error).
    """
    hists = prefix_histograms(data, block_size, reduce_ratio)
    if base_update == 0:
        base_hist = byte_histogram(data[:block_size])
    elif 1 <= base_update <= len(hists):
        base_hist = hists[base_update - 1]
    else:
        raise WorkloadError(
            f"base_update {base_update} outside [0, {len(hists)}]"
        )
    predicted = HuffmanTree.from_histogram(base_hist)
    errors = []
    for j in range(base_update, len(hists)):
        candidate = HuffmanTree.from_histogram(hists[j])
        errors.append(compression_size_error(predicted, candidate, hists[j]))
    return np.asarray(errors, dtype=np.float64)


def first_safe_update(
    data: bytes,
    tolerance: float,
    block_size: int = 4096,
    reduce_ratio: int = 16,
) -> int:
    """Smallest base update whose tree passes every later check.

    This is the workload's *rollback-free step size threshold* — the Fig. 5
    knee. Returns the number of updates M if even the penultimate prefix
    fails (i.e. no safe speculation exists).
    """
    hists = prefix_histograms(data, block_size, reduce_ratio)
    for base in range(1, len(hists)):
        profile = check_error_profile(data, block_size, reduce_ratio, base)
        if profile.size and float(profile.max()) <= tolerance:
            return base
    return len(hists)

"""Threshold anomaly detectors over the flight recorder and the registry.

Run at end of run by :func:`repro.experiments.runner.run_huffman` (and
usable standalone over any event list). Each detector returns
:class:`Anomaly` records; :func:`scan_run` additionally emits one
``anomaly_<kind>`` event per finding into the log — *before* the JSONL
sink closes, so post-mortems see the verdicts next to the raw events —
and renders the ``warnings`` list carried on ``RunReport``.

Detectors (thresholds in :class:`AnomalyThresholds`):

* **mis-speculation burst** — ``burst_k`` or more ``destroy_signal``
  events inside a window of ``burst_window_frac`` of the run's span:
  speculation is thrashing, the tolerance/step knobs need retuning.
* **ready-queue stall** — some task waited longer than
  ``stall_frac`` of the run span (and at least ``stall_floor_us``)
  between ``task_ready`` and ``task_dispatch``: workers were saturated
  or the dispatch policy starved a queue.
* **payload-budget pressure** — the largest payload footprint a process
  back-end shipped came within ``budget_frac`` of the configured budget:
  the next workload size bump will start failing dispatches.
* **worker churn** — ``crash_k`` or more ``worker_crash`` events: worker
  processes are dying (OOM kills, native-extension crashes, injected
  faults); the run completed only because the supervisor kept respawning.
  The message carries the recovery tally (respawns, quarantined tasks,
  degraded seats).
* **harvest loss** — any ``worker_harvest_lost`` event whose reason is
  not ``"degraded"``: a worker's final metrics/events snapshot never
  arrived at shutdown, so worker-side counters under-report this run.
  (A degraded seat has no pipe *by design* — its loss is the worker-churn
  detector's story, not a harvest failure.)
* **straggling seat** — ``steal_k`` or more payloads stolen from one
  seat's deque (``task_steal`` events): that worker ran so far behind
  its peers that idle seats kept draining the backlog claimed on its
  behalf. The run's throughput survived via stealing, but the seat
  itself (CPU contention, swapping, a slow kernel mix) deserves a look.
* **breaker flap** — one tenant's circuit breaker opened ``flap_k`` or
  more times within ``flap_window_us`` (``breaker_open`` events from a
  serve daemon's log): the tenant is crash-looping — its cooldown
  expires, a half-open probe admits another job, that job crashes the
  workers again. Back the tenant off instead of letting it burn a warm
  lane per cooldown. The serve daemon runs the same check inline (its
  ``stats`` op surfaces the warning live); this detector is the offline
  twin for recorded event logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import EventLog

__all__ = ["Anomaly", "AnomalyThresholds", "detect_anomalies", "scan_run"]


@dataclass(frozen=True)
class Anomaly:
    """One detector finding."""

    kind: str          # e.g. "misspec_burst"
    message: str       # human-readable, shown in RunReport.warnings
    data: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AnomalyThresholds:
    burst_k: int = 3
    burst_window_frac: float = 0.25
    stall_frac: float = 0.25
    stall_floor_us: float = 50_000.0
    budget_frac: float = 0.8
    crash_k: int = 1
    steal_k: int = 4
    flap_k: int = 3
    flap_window_us: float = 60e6


def _coordinator_events(events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Events on the coordinator clock (worker events share no epoch)."""
    return [e for e in events if e.get("clock") != "worker"]


def _span(events: list[dict[str, Any]]) -> float:
    times = [e["t"] for e in events if "t" in e]
    return (max(times) - min(times)) if len(times) > 1 else 0.0


def _detect_misspec_burst(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    destroys = [e["t"] for e in events if e.get("kind") == "destroy_signal"]
    if len(destroys) < th.burst_k:
        return None
    span = _span(events)
    window = max(span * th.burst_window_frac, 1.0)
    destroys.sort()
    for i in range(len(destroys) - th.burst_k + 1):
        burst = destroys[i + th.burst_k - 1] - destroys[i]
        if burst <= window:
            return Anomaly(
                "misspec_burst",
                f"mis-speculation burst: {th.burst_k} rollbacks within "
                f"{burst:.0f} µs (window {window:.0f} µs) — tolerance/step "
                "knobs are mispredicting this stream",
                {"rollbacks": len(destroys), "burst_us": burst,
                 "window_us": window},
            )
    return None


def _detect_ready_stall(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    span = _span(events)
    threshold = max(span * th.stall_frac, th.stall_floor_us)
    ready_at: dict[str, float] = {}
    worst: tuple[float, str] | None = None
    for event in events:
        kind = event.get("kind")
        task = event.get("task")
        if task is None:
            continue
        if kind == "task_ready":
            ready_at[task] = event["t"]
        elif kind == "task_dispatch" and task in ready_at:
            wait = event["t"] - ready_at.pop(task)
            if wait > threshold and (worst is None or wait > worst[0]):
                worst = (wait, task)
    if worst is None:
        return None
    return Anomaly(
        "ready_stall",
        f"ready-queue stall: task {worst[1]!r} waited {worst[0]:.0f} µs "
        f"between ready and dispatch (threshold {threshold:.0f} µs)",
        {"task": worst[1], "wait_us": worst[0], "threshold_us": threshold},
    )


def _detect_budget_pressure(
    snapshot: dict[str, Any], th: AnomalyThresholds
) -> Anomaly | None:
    by_name = {m["name"]: m for m in snapshot.get("metrics", ())}

    def _gauge(name: str) -> float:
        series = by_name.get(name, {}).get("series", [])
        return max((s.get("value", 0.0) for s in series), default=0.0)

    budget = _gauge("procs_payload_budget_bytes")
    peak = _gauge("procs_payload_max_footprint_bytes")
    if budget <= 0 or peak < th.budget_frac * budget:
        return None
    return Anomaly(
        "budget_pressure",
        f"payload-budget pressure: peak footprint {peak:.0f} B is "
        f"{peak / budget:.0%} of the {budget:.0f} B budget — the next "
        "size bump will fail dispatches",
        {"peak_bytes": peak, "budget_bytes": budget},
    )


def _detect_worker_churn(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    crashes = [e for e in events if e.get("kind") == "worker_crash"]
    if len(crashes) < th.crash_k:
        return None
    causes: dict[str, int] = {}
    for e in crashes:
        reason = e.get("reason", "unknown")
        causes[reason] = causes.get(reason, 0) + 1
    respawns = sum(1 for e in events if e.get("kind") == "worker_respawn")
    quarantined = sum(1 for e in events if e.get("kind") == "task_quarantine")
    degraded = sum(1 for e in events if e.get("kind") == "worker_degraded")
    cause_str = ", ".join(f"{k}×{v}" for k, v in sorted(causes.items()))
    return Anomaly(
        "worker_churn",
        f"worker churn: {len(crashes)} worker crash(es) ({cause_str}); "
        f"recovery: {respawns} respawn(s), {quarantined} task(s) "
        f"quarantined, {degraded} seat(s) degraded to inline — the run "
        "survived on the supervisor, not on healthy workers",
        {"crashes": len(crashes), "causes": causes, "respawns": respawns,
         "quarantined": quarantined, "degraded": degraded},
    )


def _detect_straggler(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    steals = [e for e in events if e.get("kind") == "task_steal"]
    if not steals:
        return None
    by_victim: dict[Any, int] = {}
    for e in steals:
        victim = e.get("from_worker")
        by_victim[victim] = by_victim.get(victim, 0) + 1
    victim, count = max(by_victim.items(), key=lambda kv: kv[1])
    if count < th.steal_k:
        return None
    return Anomaly(
        "straggler",
        f"straggling seat: {count} payload(s) stolen from worker "
        f"{victim}'s deque by idle seats ({len(steals)} steal(s) total) — "
        "that worker ran far behind its peers and throughput survived on "
        "work stealing, not on a balanced pool",
        {"worker": victim, "stolen_from": count, "steals": len(steals),
         "by_victim": {str(k): v for k, v in sorted(by_victim.items(),
                                                    key=lambda kv: str(kv[0]))}},
    )


def _detect_breaker_flap(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    opens_by_tenant: dict[str, list[float]] = {}
    for e in events:
        if e.get("kind") == "breaker_open" and "t" in e:
            opens_by_tenant.setdefault(str(e.get("tenant")), []).append(e["t"])
    worst: tuple[int, float, str] | None = None  # (count, burst_us, tenant)
    for tenant, times in opens_by_tenant.items():
        if len(times) < th.flap_k:
            continue
        times.sort()
        # Sliding window: the tightest k-open burst for this tenant.
        for i in range(len(times) - th.flap_k + 1):
            burst = times[i + th.flap_k - 1] - times[i]
            if burst > th.flap_window_us:
                continue
            count = sum(1 for t in times
                        if times[i] <= t <= times[i] + th.flap_window_us)
            if worst is None or count > worst[0]:
                worst = (count, burst, tenant)
            break
    if worst is None:
        return None
    count, burst, tenant = worst
    return Anomaly(
        "breaker_flap",
        f"breaker flap: tenant {tenant!r} circuit opened {count}x within "
        f"{burst:.0f} µs (threshold {th.flap_k} in "
        f"{th.flap_window_us:.0f} µs) — the tenant is crash-looping "
        "through half-open probes; back it off instead of burning a warm "
        "lane per cooldown",
        {"tenant": tenant, "opens": count, "burst_us": burst,
         "window_us": th.flap_window_us},
    )


def _detect_harvest_loss(
    events: list[dict[str, Any]], th: AnomalyThresholds
) -> Anomaly | None:
    lost = [e for e in events
            if e.get("kind") == "worker_harvest_lost"
            and e.get("reason") != "degraded"]
    if not lost:
        return None
    workers = sorted({e.get("worker") for e in lost})
    return Anomaly(
        "harvest_loss",
        f"harvest loss: {len(lost)} worker(s) {workers} never delivered "
        "their final metrics/events snapshot — worker-side counters "
        "under-report this run",
        {"lost": len(lost), "workers": workers},
    )


def detect_anomalies(
    events: list[dict[str, Any]],
    snapshot: dict[str, Any] | None = None,
    *,
    thresholds: AnomalyThresholds | None = None,
) -> list[Anomaly]:
    """Run every detector; returns findings (possibly empty)."""
    th = thresholds if thresholds is not None else AnomalyThresholds()
    coord = _coordinator_events(events)
    found = [
        _detect_misspec_burst(coord, th),
        _detect_ready_stall(coord, th),
        _detect_worker_churn(coord, th),
        _detect_straggler(coord, th),
        _detect_harvest_loss(coord, th),
        _detect_breaker_flap(coord, th),
    ]
    if snapshot is not None:
        found.append(_detect_budget_pressure(snapshot, th))
    return [a for a in found if a is not None]


def scan_run(
    log: EventLog,
    registry: Any | None = None,
    *,
    thresholds: AnomalyThresholds | None = None,
) -> list[str]:
    """End-of-run scan: detect, emit ``anomaly_*`` events, return warnings."""
    if not log.enabled:
        return []
    snapshot = registry.snapshot() if registry is not None else None
    anomalies = detect_anomalies(log.events(), snapshot,
                                 thresholds=thresholds)
    for anomaly in anomalies:
        log.emit(f"anomaly_{anomaly.kind}", message=anomaly.message,
                 **anomaly.data)
    return [f"{a.kind}: {a.message}" for a in anomalies]

"""Spans and W3C-style trace-context propagation — the service trace spine.

Metrics answer *how much*, the flight recorder answers *why*; spans
answer **where the time went** for one request as it crosses the
client / daemon / worker-process boundaries. The model is deliberately
the W3C Trace Context one, cut down to what the serve path needs:

* a :class:`TraceContext` is ``(trace_id, span_id)`` — 16 + 8 random
  bytes rendered as lowercase hex — serialised as a ``traceparent``
  header string ``00-<trace_id>-<span_id>-01``;
* :class:`ServeClient <repro.client.ServeClient>` mints a fresh trace
  per submitted job and sends its ``traceparent`` on the submit frame
  (:data:`repro.serve.wire.TRACEPARENT_KEY`);
* the daemon adopts (or mints, for traceless clients) the context and
  opens one child :class:`Span` per job-lifecycle stage — admission,
  queue wait, lane lease, pipeline execution, live-block streaming,
  result render;
* the active execute-span context is stamped onto the job's
  :class:`~repro.obs.events.EventLog` (``set_trace_context``) and
  carried to worker processes in the dispatch batch header, so
  worker-side ``worker_exec`` events join the same trace.

Every finished span **double-enters**:

* into the flight recorder as ``span_start`` / ``span_end`` events
  whose ``cause`` edges hang child spans off their parent's start —
  span trees are walkable with the same lineage helpers as rollback
  cascades (:func:`~repro.obs.events.walk_to_root`);
* into whatever latency :class:`~repro.obs.metrics.Histogram` the call
  site observes with :attr:`Span.dur_us` — percentile SLOs per stage
  and tenant fall out of the existing snapshot algebra.

The tracer is deliberately tiny: span *storage* is the caller's
problem (the serve daemon appends finished spans to each job's
``spans`` list via the ``sink`` parameter), and there is no sampling —
a daemon runs few jobs per second and every one deserves a trace.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.events import EventLog, default_clock

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
    "render_span_tree",
    "span_tree",
]

#: ``version-traceid-spanid-flags``; only version 00 and these exact
#: widths are produced or accepted (tolerant parse returns None on
#: anything else rather than guessing).
_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def _rand_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One (trace, span) coordinate — what crosses a boundary."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str   # 16 lowercase hex chars

    @classmethod
    def mint(cls) -> "TraceContext":
        """A brand-new trace with a fresh root span id."""
        return cls(trace_id=_rand_hex(16), span_id=_rand_hex(8))

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — the context a child span gets."""
        return TraceContext(trace_id=self.trace_id, span_id=_rand_hex(8))

    def to_traceparent(self) -> str:
        return format_traceparent(self)


def format_traceparent(ctx: TraceContext) -> str:
    """Render the W3C-style header string (version 00, flags 01)."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(header: object) -> TraceContext | None:
    """Tolerant inverse of :func:`format_traceparent`.

    Returns ``None`` for anything malformed — a traceless or garbage
    header must never fail a submit, it just starts a fresh trace.
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        return None
    return TraceContext(trace_id=match.group(1), span_id=match.group(2))


@dataclass
class Span:
    """One named, timed operation within a trace.

    ``t0_us`` / ``t1_us`` are on the tracer's clock (monotonic µs by
    default). Worker-side leaf spans synthesised from ``worker_exec``
    events carry ``clock="worker"`` in ``attrs`` because a worker's
    monotonic clock shares no epoch with the daemon's.
    """

    name: str
    context: TraceContext
    parent_id: str | None
    t0_us: float
    t1_us: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def dur_us(self) -> float:
        """Duration in µs (0.0 while the span is still open)."""
        return (self.t1_us - self.t0_us) if self.t1_us is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record — what the ``trace`` op returns per span."""
        out: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0_us": self.t0_us,
            "t1_us": self.t1_us,
            "dur_us": self.dur_us,
        }
        out.update(self.attrs)
        return out


class Tracer:
    """Opens and closes spans, double-entering each into the flight
    recorder (``span_start`` / ``span_end`` with causal edges).

    One tracer serves a whole daemon: it is thread-safe and keeps only
    the start-event seq of each *open* span (so a child's
    ``span_start`` can name its parent's as ``cause``); entries are
    dropped when the span ends.
    """

    def __init__(self, *, events: EventLog | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        self._events = events
        self._clock = clock if clock is not None else default_clock
        self._lock = threading.Lock()
        self._start_seq: dict[str, int] = {}  # open span_id -> start seq

    def start(self, name: str, *,
              parent: "TraceContext | Span | None" = None,
              **attrs: Any) -> Span:
        """Open a span.

        ``parent`` may be a :class:`TraceContext` (e.g. the adopted
        submit context), another :class:`Span`, or ``None`` to mint a
        fresh trace. ``None``-valued attrs are dropped, mirroring
        :meth:`EventLog.emit`.
        """
        parent_ctx = parent.context if isinstance(parent, Span) else parent
        ctx = parent_ctx.child() if parent_ctx is not None \
            else TraceContext.mint()
        span = Span(name=name, context=ctx,
                    parent_id=parent_ctx.span_id if parent_ctx else None,
                    t0_us=self._clock(),
                    attrs={k: v for k, v in attrs.items() if v is not None})
        if self._events is not None:
            with self._lock:
                cause = self._start_seq.get(span.parent_id or "")
            seq = self._events.emit(
                "span_start", span=name, cause=cause,
                trace_id=ctx.trace_id, span_id=ctx.span_id,
                parent_span=span.parent_id, **span.attrs)
            with self._lock:
                self._start_seq[ctx.span_id] = seq
        return span

    def end(self, span: Span, *,
            sink: Callable[[dict[str, Any]], None] | None = None,
            **attrs: Any) -> Span:
        """Close a span; idempotent-unfriendly by design (end once).

        ``sink`` receives the finished span's :meth:`Span.to_dict` —
        the serve daemon passes each job's ``spans.append``. Metric
        observation stays at the call site (the caller knows which
        histogram and labels a stage maps to).
        """
        span.t1_us = self._clock()
        for key, value in attrs.items():
            if value is not None:
                span.attrs[key] = value
        if self._events is not None:
            with self._lock:
                cause = self._start_seq.pop(span.span_id, None)
            self._events.emit(
                "span_end", span=span.name, cause=cause,
                trace_id=span.trace_id, span_id=span.span_id,
                parent_span=span.parent_id, dur_us=span.dur_us,
                **span.attrs)
        if sink is not None:
            sink(span.to_dict())
        return span

    def span(self, name: str, *,
             parent: "TraceContext | Span | None" = None,
             sink: Callable[[dict[str, Any]], None] | None = None,
             **attrs: Any) -> "_SpanScope":
        """``with tracer.span("admission", parent=ctx) as s: ...``"""
        return _SpanScope(self, name, parent, sink, attrs)


class _SpanScope:
    """Context manager wrapper for :meth:`Tracer.span`."""

    def __init__(self, tracer: Tracer, name: str,
                 parent: TraceContext | Span | None,
                 sink: Callable[[dict[str, Any]], None] | None,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._sink = sink
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start(self._name, parent=self._parent,
                                       **self._attrs)
        return self.span

    def __exit__(self, exc_type: object, *exc: object) -> None:
        self._tracer.end(self.span, sink=self._sink,
                         error=repr(exc[0]) if exc_type is not None
                         else None)


def span_tree(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Assemble flat span dicts into root trees (``children`` lists).

    Spans whose ``parent_id`` is unknown (the submit-context root lives
    client-side, and worker-clock leaves can outlive a truncated list)
    become roots themselves — a partial trace still renders. Children
    keep list order, which is completion order for the serve daemon.
    """
    nodes = [dict(s, children=[]) for s in spans]
    by_id = {n["span_id"]: n for n in nodes if n.get("span_id")}
    roots: list[dict[str, Any]] = []
    for node in nodes:
        parent = by_id.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def render_span_tree(spans: list[dict[str, Any]]) -> Iterator[str]:
    """Text lines for a span list — `repro trace --serve`'s output."""
    def walk(node: dict[str, Any], depth: int) -> Iterator[str]:
        dur = node.get("dur_us") or 0.0
        extras = [f"{k}={node[k]}" for k in
                  ("tenant", "outcome", "state", "status", "worker", "task")
                  if node.get(k) is not None]
        tail = ("  [" + " ".join(extras) + "]") if extras else ""
        yield f"{'  ' * depth}{node['name']:<12} {dur:12,.0f} µs{tail}"
        for child in node.get("children", []):
            yield from walk(child, depth + 1)

    for root in span_tree(spans):
        yield from walk(root, 0)

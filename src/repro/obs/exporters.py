"""Render registry snapshots: Prometheus text, JSON, periodic dumps.

Exporters are pure functions over the plain-dict snapshots produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — they never touch live
instruments, so a snapshot taken mid-run can be rendered later, shipped
across a pipe, or diffed against another run.

Formats:

* **Prometheus text exposition** (:func:`to_prometheus_text`) — the
  ``# HELP`` / ``# TYPE`` line format every Prometheus-compatible scraper
  ingests. Counters are suffixed ``_total``; histograms render cumulative
  ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
* **JSON snapshot** (:func:`to_json_snapshot`) — the snapshot itself with a
  format header, loadable with :func:`load_json_snapshot` and mergeable
  with :func:`~repro.obs.metrics.merge_snapshots` (this is how
  ``EXPERIMENTS.md``'s "regenerate a figure's numbers" workflow reads a
  run's counters back).

For long production-style runs, :class:`PeriodicSnapshotWriter` dumps a
snapshot to disk on an interval from a daemon thread::

    with PeriodicSnapshotWriter(registry, "run.metrics.json", interval_s=5):
        executor.run()
    # run.metrics.json now holds the final snapshot (written on exit too)
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "to_prometheus_text",
    "to_json_snapshot",
    "load_json_snapshot",
    "write_metrics",
    "PeriodicSnapshotWriter",
]

#: JSON snapshot format version (bumped on incompatible layout changes).
SNAPSHOT_FORMAT = 1


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*labels.items(), *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    f = float(value)
    return repr(int(f)) if f.is_integer() else repr(f)


def to_prometheus_text(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Metric names are prefixed with the snapshot's namespace; counter names
    get the conventional ``_total`` suffix. The output ends with a newline
    as the format requires.

    Example::

        text = to_prometheus_text(registry.snapshot())
        pathlib.Path("metrics.prom").write_text(text)
    """
    ns = snapshot.get("namespace", "repro")
    lines: list[str] = []
    for metric in snapshot.get("metrics", ()):
        kind = metric["type"]
        base = f"{ns}_{metric['name']}"
        if kind == "counter" and not base.endswith("_total"):
            base += "_total"
        lines.append(f"# HELP {base} {_escape_help(metric.get('help', ''))}")
        lines.append(f"# TYPE {base} {kind}")
        for s in metric.get("series", ()):
            labels = s.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{base}{_labels_text(labels)} {_format_value(s['value'])}"
                )
                continue
            cumulative = 0
            for bound, count in zip(s["bounds"], s["counts"]):
                cumulative += count
                lines.append(
                    f"{base}_bucket"
                    f"{_labels_text(labels, (('le', _format_value(bound)),))} "
                    f"{cumulative}"
                )
            cumulative += s["counts"][len(s["bounds"])]
            lines.append(
                f"{base}_bucket{_labels_text(labels, (('le', '+Inf'),))} {cumulative}"
            )
            lines.append(f"{base}_sum{_labels_text(labels)} {_format_value(s['sum'])}")
            lines.append(f"{base}_count{_labels_text(labels)} {s['count']}")
    return "\n".join(lines) + "\n"


def to_json_snapshot(snapshot: Mapping[str, Any], *, indent: int | None = 2,
                     meta: Mapping[str, Any] | None = None) -> str:
    """Serialise a snapshot to JSON with a format header.

    ``meta`` (e.g. ``RunConfig.to_dict()``) is embedded under a ``"meta"``
    key so the export is self-describing: a snapshot file alone says what
    run produced it.

    Example::

        doc = json.loads(to_json_snapshot(registry.snapshot()))
        doc["metrics"][0]["name"]
    """
    doc: dict[str, Any] = {"format": SNAPSHOT_FORMAT, **dict(snapshot)}
    if meta is not None:
        doc["meta"] = dict(meta)
    return json.dumps(doc, indent=indent)


def load_json_snapshot(text: str) -> dict[str, Any]:
    """Parse a snapshot previously written by :func:`to_json_snapshot`.

    Raises :class:`~repro.errors.ObservabilityError` on a missing or
    incompatible format header, so stale files fail loudly.
    """
    doc = json.loads(text)
    if doc.get("format") != SNAPSHOT_FORMAT:
        raise ObservabilityError(
            f"unsupported metrics snapshot format {doc.get('format')!r} "
            f"(expected {SNAPSHOT_FORMAT})"
        )
    doc.pop("format", None)
    return doc


def write_metrics(path: str, snapshot: Mapping[str, Any],
                  fmt: str | None = None, *,
                  meta: Mapping[str, Any] | None = None) -> str:
    """Write a snapshot to ``path``; returns the format used.

    ``fmt`` is ``"prom"`` or ``"json"``; when None it is inferred from the
    file extension (``.json`` → JSON, anything else → Prometheus text).
    ``meta`` describes the run that produced the numbers: embedded as a
    ``"meta"`` object in JSON, rendered as leading ``#`` comment lines in
    Prometheus text. The write goes through a same-directory temp file +
    atomic rename so a scraper never reads a half-written snapshot.
    """
    if fmt is None:
        fmt = "json" if str(path).endswith(".json") else "prom"
    if fmt not in ("prom", "json"):
        raise ObservabilityError(f"unknown metrics format {fmt!r}")
    if fmt == "json":
        text = to_json_snapshot(snapshot, meta=meta)
    else:
        text = to_prometheus_text(snapshot)
        if meta:
            header = "".join(
                f"# meta {k}={_escape_help(str(v))}\n" for k, v in meta.items()
            )
            text = header + text
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return fmt


class PeriodicSnapshotWriter:
    """Dump a registry's snapshot to disk on a fixed interval.

    Designed for long production-style runs: a daemon thread wakes every
    ``interval_s`` seconds and rewrites ``path`` atomically, so an external
    observer (or a crash post-mortem) always sees a recent, complete
    snapshot. A final snapshot is written on :meth:`stop` / context exit.

    Example::

        writer = PeriodicSnapshotWriter(registry, "run.prom", interval_s=10)
        writer.start()
        try:
            run_long_workload()
        finally:
            writer.stop()          # writes one last snapshot
    """

    def __init__(self, registry, path: str, *, interval_s: float = 5.0,
                 fmt: str | None = None,
                 meta: Mapping[str, Any] | None = None) -> None:
        if interval_s <= 0:
            raise ObservabilityError("interval_s must be positive")
        self.registry = registry
        self.path = str(path)
        self.interval_s = interval_s
        self.fmt = fmt
        #: run description embedded in every write (see write_metrics).
        self.meta = meta
        self.writes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def flush(self) -> None:
        """Write one snapshot now (also callable without start())."""
        write_metrics(self.path, self.registry.snapshot(), self.fmt,
                      meta=self.meta)
        self.writes += 1

    def start(self) -> "PeriodicSnapshotWriter":
        """Start the background writer thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="obs-snapshot-writer", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and write a final snapshot.

        The final flush is unconditional: even if the writer thread died
        or refuses to join, ``stop()`` still leaves a fresh, complete
        snapshot on disk — short runs (interval longer than the run) and
        crashed runs keep their post-mortem data. Idempotent.
        """
        self._stop.set()
        try:
            if self._thread is not None:
                self._thread.join()
                self._thread = None
        finally:
            self.flush()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.flush()
            except Exception:
                # A transient write failure (disk pressure, a vanished
                # directory) must not kill the periodic thread; a
                # persistent one surfaces through the final stop() flush.
                continue

    def __enter__(self) -> "PeriodicSnapshotWriter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

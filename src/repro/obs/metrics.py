"""Counters, gauges, histograms and the registry that names them.

Design constraints (why this module looks the way it does):

* **Always on.** The runtime increments counters on every task completion,
  so an increment must cost a couple of dict operations, never a lock.
  Each instrument shards its state per *writer thread* (keyed by
  ``threading.get_ident()``): a thread only ever mutates its own shard, so
  under the GIL writes need no synchronisation ("lock-free-ish"). Readers
  fold all shards, accepting a momentarily stale view.
* **Mergeable.** The process-pool executor's workers live in other address
  spaces; their numbers come home as snapshots folded into the
  coordinator's registry (:meth:`MetricsRegistry.merge_snapshot`). The
  merge is plain snapshot algebra — :func:`merge_snapshots` is associative
  and commutative (property-tested), so aggregation order never matters.
* **Export-agnostic.** A snapshot is a plain JSON-able dict; the exporters
  in :mod:`repro.obs.exporters` render it as Prometheus text or JSON
  without ever touching live instruments.

Example::

    reg = MetricsRegistry("pipeline")
    done = reg.counter("tasks_done", "tasks finished", labelnames=("kind",))
    done.labels(kind="encode").inc()
    depth = reg.gauge("queue_depth", "ready tasks")
    depth.set(3)
    lat = reg.histogram("task_us", "task latency (µs)")
    lat.observe(420.0)
    snap = reg.snapshot()          # plain dict, safe to json.dumps
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Mapping, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "merge_snapshots",
    "DEFAULT_LATENCY_BUCKETS_US",
    "MONOTONIC_CLOCK",
]

#: The one default time source for the whole obs package: monotonic,
#: immune to wall-clock jumps (NTP slews, DST). Histogram timers use it
#: directly (seconds); the event log derives its µs timestamps from the
#: same callable, so timer observations and event timelines are
#: comparable by construction.
MONOTONIC_CLOCK = time.perf_counter

#: Default histogram bucket upper bounds, tuned for µs-scale latencies:
#: geometric 1-2.5-5 decades from 5 µs to 5 s (the executor clock is µs for
#: both simulated and wall time). An implicit +Inf bucket follows the last.
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _label_key(labelnames: Sequence[str], labels: Mapping[str, str]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ObservabilityError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Child:
    """One labelled series of a metric (the no-label case is the () child)."""

    __slots__ = ("_shards",)

    def __init__(self) -> None:
        # thread-ident -> accumulated value. A negative pseudo-ident (-1)
        # holds externally merged contributions (worker snapshots).
        self._shards: dict[int, float] = {}

    def _add(self, amount: float) -> None:
        shards = self._shards
        tid = threading.get_ident()
        shards[tid] = shards.get(tid, 0.0) + amount

    def _merge_external(self, amount: float) -> None:
        self._shards[-1] = self._shards.get(-1, 0.0) + amount

    def value(self) -> float:
        # list() copies atomically under the GIL; summing the copy cannot
        # race a writer thread inserting its first shard.
        return sum(list(self._shards.values()))


class _CounterChild(_Child):
    """A single monotonically increasing series.

    Example::

        c = registry.counter("requests", "requests served")
        c.inc()
        c.inc(3)
        assert c.value() == 4
    """

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ObservabilityError("counters can only increase")
        self._add(amount)


class _GaugeChild:
    """A single settable series (last write wins within a process).

    Example::

        g = registry.gauge("inflight", "tasks currently running")
        g.set(2);  g.inc();  g.dec()
        assert g.value() == 2
    """

    __slots__ = ("_value", "_external", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._external: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def _merge_external(self, value: float) -> None:
        with self._lock:
            self._external = value if self._external is None else max(self._external, value)

    def value(self) -> float:
        """Current value; externally merged gauges contribute their max."""
        with self._lock:
            if self._external is None:
                return self._value
            return max(self._value, self._external)


class _HistogramChild:
    """One labelled histogram series with fixed bucket upper bounds.

    Observations land in per-thread shards of ``(bucket counts, sum,
    count)``; exporters read the folded, *non-cumulative* counts (the
    Prometheus renderer cumulates at the end).

    Example::

        h = registry.histogram("svc_us", "service time", buckets=(10, 100))
        h.observe(7);  h.observe(70);  h.observe(700)
        counts, total, n = h.raw()     # counts == [1, 1, 1] (incl. +Inf)
    """

    __slots__ = ("_bounds", "_shards")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        # thread-ident -> [counts list (len bounds+1), sum, count]
        self._shards: dict[int, list[Any]] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        tid = threading.get_ident()
        shard = self._shards.get(tid)
        if shard is None:
            shard = self._shards[tid] = [[0] * (len(self._bounds) + 1), 0.0, 0]
        shard[0][bisect_left(self._bounds, value)] += 1
        shard[1] += value
        shard[2] += 1

    def time(self, clock=None):
        """Context manager that observes the elapsed time of its body.

        ``clock`` defaults to :func:`time.perf_counter` (seconds); pass the
        executor's µs clock to record in the run's own time base::

            with histogram.time(clock=lambda: runtime.now):
                do_work()
        """
        return _Timer(self, clock)

    def _merge_external(self, counts: Sequence[int], total: float, n: int) -> None:
        if len(counts) != len(self._bounds) + 1:
            raise ObservabilityError(
                f"histogram merge: {len(counts)} buckets vs {len(self._bounds) + 1}"
            )
        shard = self._shards.get(-1)
        if shard is None:
            shard = self._shards[-1] = [[0] * (len(self._bounds) + 1), 0.0, 0]
        for i, c in enumerate(counts):
            shard[0][i] += c
        shard[1] += total
        shard[2] += n

    def raw(self) -> tuple[list[int], float, int]:
        """Folded ``(non-cumulative counts, sum, count)`` across shards."""
        counts = [0] * (len(self._bounds) + 1)
        total = 0.0
        n = 0
        for shard in list(self._shards.values()):
            for i, c in enumerate(shard[0]):
                counts[i] += c
            total += shard[1]
            n += shard[2]
        return counts, total, n

    def count(self) -> int:
        """Total number of observations."""
        return self.raw()[2]

    def sum(self) -> float:
        """Sum of all observed values."""
        return self.raw()[1]

    def mean(self) -> float:
        """Mean observation, or 0.0 when empty."""
        _, total, n = self.raw()
        return total / n if n else 0.0


class _Timer:
    __slots__ = ("_hist", "_clock", "_t0")

    def __init__(self, hist: _HistogramChild, clock) -> None:
        self._hist = hist
        self._clock = clock if clock is not None else MONOTONIC_CLOCK

    def __enter__(self) -> "_Timer":
        self._t0 = self._clock()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._hist.observe(self._clock() - self._t0)


class _Metric:
    """Shared labelling machinery: a metric is a family of children."""

    kind = "base"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """Get or create the child series for one label combination.

        Example::

            done = reg.counter("tasks", "tasks run", labelnames=("kind",))
            done.labels(kind="encode").inc()
        """
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default_child(self):
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                "use .labels(...) to pick a series"
            )
        return self._children[()]

    def series(self) -> list[tuple[dict[str, str], Any]]:
        """All ``(labels dict, child)`` pairs, in creation order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in list(self._children.items())
        ]

    def snapshot_series(self) -> list[dict[str, Any]]:
        """Plain-dict state of every series (kind-specific shape)."""
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing metric family.

    Example::

        errs = reg.counter("task_failures", "task bodies that raised")
        errs.inc()
    """

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series."""
        self._default_child().inc(amount)

    def value(self) -> float:
        """Current value of the label-less series."""
        return self._default_child().value()

    def snapshot_series(self) -> list[dict[str, Any]]:
        """``{"labels", "value"}`` per series."""
        return [
            {"labels": labels, "value": child.value()}
            for labels, child in self.series()
        ]


class Gauge(_Metric):
    """A point-in-time level (queue depth, in-flight tasks, workers).

    Example::

        depth = reg.gauge("ready_depth", "ready-queue length")
        depth.set(len(queue))
    """

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the label-less series."""
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add to the label-less series."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract from the label-less series."""
        self._default_child().dec(amount)

    def value(self) -> float:
        """Current value of the label-less series."""
        return self._default_child().value()

    def snapshot_series(self) -> list[dict[str, Any]]:
        """``{"labels", "value"}`` per series."""
        return [
            {"labels": labels, "value": child.value()}
            for labels, child in self.series()
        ]


class Histogram(_Metric):
    """A distribution with fixed bucket upper bounds (+Inf implicit).

    Example::

        lat = reg.histogram("block_latency_us", "per-block latency",
                            buckets=(100, 1000, 10000))
        lat.observe(740.0)
        lat.mean()
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS_US))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the label-less series."""
        self._default_child().observe(value)

    def time(self, clock=None):
        """Time a ``with`` body into the label-less series."""
        return self._default_child().time(clock)

    def count(self) -> int:
        """Observation count of the label-less series."""
        return self._default_child().count()

    def sum(self) -> float:
        """Observation sum of the label-less series."""
        return self._default_child().sum()

    def mean(self) -> float:
        """Mean observation of the label-less series (0.0 when empty)."""
        return self._default_child().mean()

    def snapshot_series(self) -> list[dict[str, Any]]:
        """``{"labels", "bounds", "counts", "sum", "count"}`` per series
        (non-cumulative counts; the last entry is the +Inf bucket)."""
        out = []
        for labels, child in self.series():
            counts, total, n = child.raw()
            out.append({
                "labels": labels,
                "bounds": list(self.buckets),
                "counts": counts,
                "sum": total,
                "count": n,
            })
        return out


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    Calling :meth:`counter` / :meth:`gauge` / :meth:`histogram` twice with
    the same name returns the same instrument, so independent subsystems
    (runtime, executor, speculation manager) can share one registry without
    coordination. Re-declaring a name with a different type raises.

    Example::

        reg = MetricsRegistry("run42")
        reg.counter("spec_commits", "commits").inc()
        snap = reg.snapshot()
        reg2 = MetricsRegistry("run42")
        reg2.merge_snapshot(snap)      # cross-process aggregation
        assert reg2.value("spec_commits") == 1
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ObservabilityError(
                        f"metric {name!r} labelnames {existing.labelnames} != "
                        f"{tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        """Get or create a :class:`Histogram` (buckets fixed at creation)."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        """The metric registered under ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def value(self, name: str, **labels: str) -> float:
        """Convenience: current value of one counter/gauge series.

        Example::

            reg.value("sre_tasks_completed", speculative="yes")
        """
        metric = self.get(name)
        if metric is None:
            raise ObservabilityError(f"no metric named {name!r}")
        child = metric.labels(**labels) if labels else metric._default_child()
        return child.value()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-able view of every metric's current state."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            "namespace": self.namespace,
            "metrics": [
                {
                    "name": m.name,
                    "type": m.kind,
                    "help": m.help,
                    "labelnames": list(m.labelnames),
                    "series": m.snapshot_series(),
                }
                for m in metrics
            ],
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold an external snapshot (e.g. from a worker process) in.

        Counter and histogram series *add*; gauges take the max (a level
        observed elsewhere cannot meaningfully sum). Metrics absent here
        are created with the snapshot's declared type and buckets.
        """
        for m in snapshot.get("metrics", ()):
            kind = m.get("type")
            if kind not in _VALID_TYPES:
                raise ObservabilityError(f"unknown metric type {kind!r}")
            labelnames = tuple(m.get("labelnames", ()))
            if kind == "counter":
                metric = self.counter(m["name"], m.get("help", ""), labelnames)
            elif kind == "gauge":
                metric = self.gauge(m["name"], m.get("help", ""), labelnames)
            else:
                bounds = None
                if m["series"]:
                    bounds = m["series"][0].get("bounds")
                metric = self.histogram(m["name"], m.get("help", ""), labelnames,
                                        buckets=bounds)
            for s in m.get("series", ()):
                child = (metric.labels(**s.get("labels", {}))
                         if labelnames else metric._default_child())
                if kind == "histogram":
                    child._merge_external(s["counts"], s["sum"], s["count"])
                else:
                    child._merge_external(s["value"])


# ----------------------------------------------------------------------
# pure snapshot algebra
# ----------------------------------------------------------------------
def _merge_series(kind: str, a: list[dict], b: list[dict]) -> list[dict]:
    by_labels: dict[tuple, dict] = {}
    order: list[tuple] = []
    for s in a:
        key = tuple(sorted(s.get("labels", {}).items()))
        by_labels[key] = {**s, "labels": dict(s.get("labels", {}))}
        order.append(key)
    for s in b:
        key = tuple(sorted(s.get("labels", {}).items()))
        if key not in by_labels:
            by_labels[key] = {**s, "labels": dict(s.get("labels", {}))}
            order.append(key)
            continue
        acc = by_labels[key]
        if kind == "counter":
            acc["value"] = acc["value"] + s["value"]
        elif kind == "gauge":
            acc["value"] = max(acc["value"], s["value"])
        else:
            if list(acc["bounds"]) != list(s["bounds"]):
                raise ObservabilityError(
                    "histogram merge requires identical bucket bounds"
                )
            acc["counts"] = [x + y for x, y in zip(acc["counts"], s["counts"])]
            acc["sum"] = acc["sum"] + s["sum"]
            acc["count"] = acc["count"] + s["count"]
    # Deterministic output order so merge order can't leak into exports.
    return [by_labels[k] for k in sorted(set(order))]


def merge_snapshots(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict[str, Any]:
    """Merge two registry snapshots into a new one (pure function).

    The operation is associative and commutative (property-tested in
    ``tests/property``): counters and histogram buckets add, gauges take
    the max, series are matched by label set, and the result's metric list
    is sorted by name. Bucket bounds must agree for histograms.

    Example::

        total = merge_snapshots(coordinator_snap, worker_snap)
    """
    by_name: dict[str, dict] = {}
    for snap in (a, b):
        for m in snap.get("metrics", ()):
            name = m["name"]
            if name not in by_name:
                by_name[name] = {
                    "name": name,
                    "type": m["type"],
                    "help": m.get("help", ""),
                    "labelnames": list(m.get("labelnames", ())),
                    "series": [dict(s, labels=dict(s.get("labels", {})))
                               for s in m.get("series", ())],
                }
                continue
            acc = by_name[name]
            if acc["type"] != m["type"]:
                raise ObservabilityError(
                    f"cannot merge metric {name!r}: {acc['type']} vs {m['type']}"
                )
            acc["series"] = _merge_series(m["type"], acc["series"],
                                          list(m.get("series", ())))
    return {
        "namespace": a.get("namespace", b.get("namespace", "repro")),
        "metrics": [by_name[k] for k in sorted(by_name)],
    }


def histogram_quantile(bounds: Sequence[float], counts: Sequence[float],
                       q: float) -> float | None:
    """Estimate the ``q``-quantile of one histogram series.

    ``bounds`` / ``counts`` are the :meth:`Histogram.snapshot_series`
    shape: non-cumulative counts with the implicit +Inf bucket last
    (``len(counts) == len(bounds) + 1``). Linear interpolation within
    the winning bucket, Prometheus-style; observations in the +Inf
    bucket clamp to the highest finite bound (there is no upper edge to
    interpolate toward). Returns ``None`` for an empty series.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total <= 0:
        return None
    rank = q * total
    seen = 0.0
    for i, count in enumerate(counts):
        if count <= 0:
            continue
        if seen + count >= rank:
            if i >= len(bounds):  # +Inf bucket: clamp to the last edge
                return float(bounds[-1]) if bounds else None
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i])
            frac = (rank - seen) / count
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        seen += count
    return float(bounds[-1]) if bounds else None

"""Structured event log with causal IDs — the "flight recorder".

Metrics (:mod:`repro.obs.metrics`) answer *how much*; the event log
answers *why*. Every noteworthy state transition in the runtime emits one
event — a plain dict — into an :class:`EventLog`: a bounded in-memory ring
buffer with an optional JSONL sink. Each event carries::

    run_id   short hex id of the run that produced it
    seq      coordinator-assigned monotonically increasing integer
    t        monotonic timestamp (µs, same clock as the executor)
    kind     event kind, e.g. "task_spawn", "check_fail", "destroy_signal"
    task     task name (when the event concerns one task)
    version  speculation version id (when the event concerns one version)
    cause    seq of the event that *caused* this one (None for roots)

plus kind-specific payload fields (predicted/observed values, error,
byte counts, ...). ``cause`` edges make speculation lineage a walkable
graph::

    spec_predict -> spec_launch -> task_spawn*            (optimistic arm)
    spec_launch  -> check_fail  -> destroy_signal         (mis-speculation)
    destroy_signal -> task_abort* / buffer_discard / shm_release
    check_fail   -> spec_launch (rebuild)                 (re-speculation)

Causality is threaded implicitly: code that triggers a fan-out wraps the
fan-out in ``with events.cause(seq):`` and every event emitted on that
thread (including deep inside the runtime) defaults its ``cause`` to the
innermost active scope. That keeps call sites honest — the Runtime does
not need to know *why* a task is being aborted to record who signed the
destruction order.

Worker processes keep their own :class:`EventLog` (seqs and clock are
process-local); the coordinator folds them in with
:meth:`EventLog.merge_worker`, which re-assigns coordinator seqs while
preserving order and remapping intra-batch ``cause`` references, and tags
each event with ``worker`` / ``worker_seq`` so per-worker ordering stays
reconstructible.

The hot path (``emit`` into the ring, no sink) is a dict build plus a
deque append under a lock — cheap enough to leave on for every run.
"""

from __future__ import annotations

import json
import threading
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import EventSchemaError
from repro.obs.metrics import MONOTONIC_CLOCK

__all__ = [
    "EVENTS_SCHEMA",
    "EVENTS_SCHEMA_VERSION",
    "EventLog",
    "default_clock",
    "load_events_jsonl",
    "read_event_log",
    "index_by_seq",
    "children_of",
    "walk_to_root",
]

#: Schema identifier stamped into the ``log_header`` record of every
#: JSONL sink. Bump :data:`EVENTS_SCHEMA_VERSION` whenever an event kind
#: or field changes meaning in a way replay/explain must not silently
#: misread — readers reject mismatched logs with a clear error instead
#: of drifting.
EVENTS_SCHEMA = "repro.events"
EVENTS_SCHEMA_VERSION = 1


def default_clock() -> float:
    """Monotonic microseconds, derived from the same
    :data:`~repro.obs.metrics.MONOTONIC_CLOCK` histogram timers use —
    immune to wall-clock jumps (NTP, DST)."""
    return MONOTONIC_CLOCK() * 1e6


def new_run_id() -> str:
    return uuid.uuid4().hex[:8]


class EventLog:
    """Bounded ring of structured events plus an optional JSONL sink.

    Parameters
    ----------
    run_id:
        Identifier stamped on every event; generated when omitted.
    capacity:
        Ring size. The ring keeps the *most recent* ``capacity`` events;
        the JSONL sink (when given) receives every event regardless.
    path:
        Optional JSONL file path. One event per line, append-only,
        flushed on :meth:`close`.
    clock:
        Callable returning the event timestamp (µs). Defaults to
        :func:`default_clock`; the Runtime rebinds it to the executor
        clock so event and histogram timings share a time base.
    enabled:
        When False, :meth:`emit` is a near-no-op returning ``0`` and no
        state is kept — for overhead measurements and opt-outs.
    meta:
        JSON-safe dict embedded in the sink's ``log_header`` record
        (e.g. the run's ``RunConfig.to_dict()``) — what makes a recorded
        log self-describing enough to replay. Ignored without ``path``.

    When ``path`` is given the first line written is a ``log_header``
    record at ``seq 0`` carrying :data:`EVENTS_SCHEMA` /
    :data:`EVENTS_SCHEMA_VERSION` (and ``meta``);
    :func:`read_event_log` validates it so logs from older builds fail
    loudly instead of obscurely.
    """

    def __init__(
        self,
        run_id: str | None = None,
        *,
        capacity: int = 65536,
        path: str | None = None,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self.enabled = enabled
        self._clock = clock if clock is not None else default_clock
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=max(1, capacity))
        self._seq = 0
        self._trace: Any = None
        self._local = threading.local()
        self._path = path
        self._file = open(path, "w", encoding="utf-8") if path else None
        if self._file is not None:
            header: dict[str, Any] = {
                "kind": "log_header",
                "schema": EVENTS_SCHEMA,
                "schema_version": EVENTS_SCHEMA_VERSION,
                "run_id": self.run_id,
                "seq": 0,
                "t": self._clock(),
            }
            if meta:
                header["meta"] = meta
            self._file.write(json.dumps(header, default=str) + "\n")

    # ------------------------------------------------------------------
    # clock

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # ------------------------------------------------------------------
    # trace context (repro.obs.spans)

    @property
    def trace_context(self) -> Any:
        """The active :class:`~repro.obs.spans.TraceContext`, or None."""
        return self._trace

    def set_trace_context(self, ctx: Any) -> None:
        """Stamp ``trace_id`` onto every subsequently emitted event.

        Set by the job runners from ``JobResources.trace`` (the serve
        daemon's execute-span context) and by worker processes from the
        traceparent carried in the dispatch batch header — so every
        event of a served job, on either side of the process boundary,
        joins the same distributed trace. ``None`` clears the context
        (a warm lane must not leak one job's trace onto the next).
        """
        self._trace = ctx

    # ------------------------------------------------------------------
    # cause context

    def current_cause(self) -> int | None:
        """Seq of the innermost active ``cause`` scope on this thread."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def cause(self, seq: int | None) -> Iterator[None]:
        """Events emitted on this thread inside the scope default their
        ``cause`` to ``seq`` (innermost scope wins)."""
        if not self.enabled or seq is None:
            yield
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(seq)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # emission

    def emit(
        self,
        kind: str,
        *,
        task: str | None = None,
        version: int | None = None,
        cause: int | None = None,
        **data: Any,
    ) -> int:
        """Record one event; returns its seq (0 when disabled).

        ``cause`` falls back to the innermost :meth:`cause` scope active
        on the calling thread. ``None``-valued payload fields are dropped
        so the JSONL stays compact.
        """
        if not self.enabled:
            return 0
        if cause is None:
            cause = self.current_cause()
        event: dict[str, Any] = {"run_id": self.run_id, "kind": kind}
        if task is not None:
            event["task"] = task
        if version is not None:
            event["version"] = version
        if cause is not None:
            event["cause"] = cause
        for key, value in data.items():
            if value is not None:
                event[key] = value
        if self._trace is not None:
            event.setdefault("trace_id", self._trace.trace_id)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event["t"] = self._clock()
            self._ring.append(event)
            if self._file is not None:
                self._file.write(json.dumps(event, default=str) + "\n")
        return event["seq"]

    def merge_worker(self, worker: int, worker_events: list[dict]) -> None:
        """Fold a worker process's event batch into this log.

        Worker seqs are process-local, so each event gets a fresh
        coordinator seq (order preserved); ``cause`` references that
        point *within* the batch are remapped to the new seqs, ones that
        don't are dropped (they cannot resolve in this log). The original
        ordering survives as ``worker`` / ``worker_seq``; worker
        timestamps are kept verbatim and flagged ``clock="worker"``
        because the worker's monotonic clock shares no epoch with ours.
        """
        self._merge_foreign(worker_events, tags={"worker": worker},
                            seq_key="worker_seq")

    def merge_remote(self, origin: str, remote_events: list[dict]) -> None:
        """Fold a remote pool's event batch into this log.

        Like :meth:`merge_worker`, but for a whole remote worker pool
        (see :mod:`repro.sre.executor_dist`): events arrive already
        aggregated across that pool's workers, so existing ``worker`` /
        ``worker_seq`` attribution is preserved rather than overwritten.
        The batch is tagged ``origin=<origin>`` (the pool address) and
        its foreign seqs survive as ``remote_seq``; a ``clock`` already
        stamped by the pool's own merge is kept.
        """
        self._merge_foreign(remote_events, tags={"origin": origin},
                            seq_key="remote_seq")

    def _merge_foreign(self, foreign: list[dict], *, tags: dict,
                       seq_key: str) -> None:
        if not self.enabled or not foreign:
            return
        with self._lock:
            remap: dict[int, int] = {}
            for src in foreign:
                self._seq += 1
                event = dict(src)
                old_seq = event.get("seq")
                if old_seq is not None:
                    remap[old_seq] = self._seq
                    event[seq_key] = old_seq
                old_cause = event.get("cause")
                if old_cause is not None:
                    if old_cause in remap:
                        event["cause"] = remap[old_cause]
                    else:
                        del event["cause"]
                event["seq"] = self._seq
                event["run_id"] = self.run_id
                event.update(tags)
                event.setdefault("clock", "worker")
                self._ring.append(event)
                if self._file is not None:
                    self._file.write(json.dumps(event, default=str) + "\n")

    # ------------------------------------------------------------------
    # access

    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the ring (oldest first)."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def path(self) -> str | None:
        return self._path

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# lineage helpers (used by `repro explain` and the tests)


def load_events_jsonl(path: str) -> list[dict[str, Any]]:
    """Load the *events* of an ``*.events.jsonl`` file (header skipped).

    Raw access with no schema validation: ``log_header`` records are
    dropped so pre-header logs and current ones read identically. Use
    :func:`read_event_log` when you need the header (replay does) or
    want version mismatches rejected loudly.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                record = json.loads(line)
                if record.get("kind") != "log_header":
                    events.append(record)
    return events


def read_event_log(
    path: str, *, require_header: bool = True
) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
    """Load and validate an event log; returns ``(header, events)``.

    The first record must be a ``log_header`` stamped by this build's
    :class:`EventLog` (see :data:`EVENTS_SCHEMA_VERSION`). Raises
    :class:`~repro.errors.EventSchemaError` when the header is missing
    (unless ``require_header=False``, for tools like ``repro explain``
    that degrade gracefully on old logs) or when the schema/version
    doesn't match what this build reads — the "log from another build"
    failure becomes one clear sentence instead of a KeyError three
    layers down.
    """
    with open(path, "r", encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    if not records or records[0].get("kind") != "log_header":
        if require_header:
            raise EventSchemaError(
                f"{path}: no log_header record on line 1 — this log predates "
                f"schema v{EVENTS_SCHEMA_VERSION} (or was not written by an "
                "EventLog). Re-record it with this build, or use "
                "load_events_jsonl for raw access."
            )
        return None, [r for r in records if r.get("kind") != "log_header"]
    header = records[0]
    schema = header.get("schema")
    version = header.get("schema_version")
    if schema != EVENTS_SCHEMA:
        raise EventSchemaError(
            f"{path}: schema {schema!r} is not {EVENTS_SCHEMA!r} — "
            "not a repro event log"
        )
    if version != EVENTS_SCHEMA_VERSION:
        raise EventSchemaError(
            f"{path}: written with event schema v{version}, but this build "
            f"reads v{EVENTS_SCHEMA_VERSION} — re-record the run with this "
            "build (event kinds/fields changed meaning between versions)"
        )
    return header, records[1:]


def index_by_seq(events: list[dict[str, Any]]) -> dict[int, dict[str, Any]]:
    return {e["seq"]: e for e in events if "seq" in e}


def children_of(events: list[dict[str, Any]]) -> dict[int, list[dict[str, Any]]]:
    """Map each seq to the events it directly caused (in seq order)."""
    kids: dict[int, list[dict[str, Any]]] = {}
    for event in events:
        cause = event.get("cause")
        if cause is not None:
            kids.setdefault(cause, []).append(event)
    return kids


def walk_to_root(
    event: dict[str, Any], by_seq: dict[int, dict[str, Any]]
) -> list[dict[str, Any]]:
    """Follow ``cause`` edges up; returns the chain ending at the root.

    The chain starts with ``event`` itself and ends at the first event
    with no (resolvable) cause. Cycles cannot occur — causes always point
    at earlier seqs — but dangling causes (ring eviction) terminate the
    walk gracefully.
    """
    chain = [event]
    seen = {event.get("seq")}
    while True:
        cause = chain[-1].get("cause")
        if cause is None or cause not in by_seq or cause in seen:
            return chain
        parent = by_seq[cause]
        seen.add(cause)
        chain.append(parent)

"""Post-mortem reconstruction of rollback cascades from the event log.

``repro explain run.events.jsonl`` walks the flight recorder's ``cause``
edges backwards and forwards around each ``destroy_signal``:

* **backwards** to the root cause — the ``check_fail`` that pulled the
  trigger, and above it the ``spec_launch`` / ``spec_predict`` that
  created the doomed version;
* **forwards** over the fan-out — every ``task_abort`` (including ones
  reaped later on the process back-end, whose cause was stamped when the
  destroy signal flagged them), ``buffer_discard`` and ``shm_release``
  the signal caused;
* **sideways** to the rebuild — the re-speculation ``spec_launch`` that
  shares the failed check as its cause.

The totals printed here are double-entered elsewhere (``rollback_done``
events carry the :class:`~repro.core.rollback.RollbackEngine` counters;
``shm_release`` byte sums match ``shm_bytes_released{reason=rollback}``),
so the cascade tree can be trusted against the metrics surface.

The same machinery explains **physical** failure: each ``worker_crash``
event (process back-end; see docs/fault-tolerance.md) roots a
crash-recovery cascade — the ``worker_respawn`` or ``worker_degraded``
that replaced the process, every ``task_retry`` re-dispatch, any
``task_quarantine`` give-ups with their forced ``shm_release``
(``reason="crash"``), and follow-on ``worker_crash`` events when the
replacement died too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import children_of, index_by_seq, read_event_log, walk_to_root

__all__ = ["RollbackCascade", "CrashCascade", "build_cascades",
           "build_crash_cascades", "format_cascades",
           "format_crash_cascades", "format_steals", "explain_events",
           "explain_path"]


@dataclass
class RollbackCascade:
    """One destroy signal and everything it caused."""

    destroy: dict[str, Any]
    #: cause chain from the destroy signal up to its root (oldest last).
    root_chain: list[dict[str, Any]] = field(default_factory=list)
    aborts: list[dict[str, Any]] = field(default_factory=list)
    discards: list[dict[str, Any]] = field(default_factory=list)
    releases: list[dict[str, Any]] = field(default_factory=list)
    #: the re-speculation launched off this cascade's failed check.
    rebuilds: list[dict[str, Any]] = field(default_factory=list)
    #: engine totals from the paired rollback_done event.
    tasks_destroyed: int = 0
    buffer_discarded: int = 0
    wasted_us: float = 0.0

    @property
    def version(self) -> int | None:
        return self.destroy.get("version")

    @property
    def freed_bytes(self) -> int:
        """Shared-memory bytes released with reason=rollback."""
        return sum(int(e.get("nbytes", 0)) for e in self.releases
                   if e.get("reason") == "rollback")

    @property
    def freed_refs(self) -> int:
        return sum(int(e.get("refs", 0)) for e in self.releases
                   if e.get("reason") == "rollback")


def build_cascades(
    events: list[dict[str, Any]], version: int | None = None
) -> list[RollbackCascade]:
    """Group the event list into per-destroy-signal cascades.

    ``version`` filters to one speculation version's rollback(s).
    """
    by_seq = index_by_seq(events)
    kids = children_of(events)
    cascades: list[RollbackCascade] = []
    for event in events:
        if event.get("kind") != "destroy_signal":
            continue
        if version is not None and event.get("version") != version:
            continue
        cascade = RollbackCascade(destroy=event)
        cascade.root_chain = walk_to_root(event, by_seq)[1:]
        for child in kids.get(event["seq"], ()):
            kind = child.get("kind")
            if kind == "task_abort":
                cascade.aborts.append(child)
            elif kind == "buffer_discard":
                cascade.discards.append(child)
            elif kind == "shm_release":
                cascade.releases.append(child)
            elif kind == "rollback_done":
                cascade.tasks_destroyed = int(child.get("tasks_destroyed", 0))
                cascade.buffer_discarded = int(child.get("buffer_discarded", 0))
                cascade.wasted_us = float(child.get("wasted_us", 0.0))
        # The rebuild hangs off the *check_fail* (shared cause with the
        # destroy signal), not off the destroy signal itself.
        trigger = cascade.destroy.get("cause")
        if trigger is not None:
            cascade.rebuilds = [
                c for c in kids.get(trigger, ())
                if c.get("kind") in ("spec_launch", "spec_predict")
            ]
        cascades.append(cascade)
    return cascades


@dataclass
class CrashCascade:
    """One worker crash and the recovery it caused.

    Built from the cause tree rooted at a ``worker_crash`` event. A
    replacement worker dying again shows up as a *follow-on* crash: its
    event is a descendant of this root, and its own recovery children are
    folded into this cascade (one cascade per original failure, however
    many incarnations it burned through).
    """

    crash: dict[str, Any]
    respawns: list[dict[str, Any]] = field(default_factory=list)
    degraded: list[dict[str, Any]] = field(default_factory=list)
    retries: list[dict[str, Any]] = field(default_factory=list)
    quarantines: list[dict[str, Any]] = field(default_factory=list)
    releases: list[dict[str, Any]] = field(default_factory=list)
    follow_on: list[dict[str, Any]] = field(default_factory=list)

    @property
    def worker(self) -> int | None:
        return self.crash.get("worker")

    @property
    def reason(self) -> str:
        """Why the worker was lost: ``crash`` / ``hang`` / ``protocol``."""
        return self.crash.get("reason", "unknown")

    @property
    def crash_freed_bytes(self) -> int:
        """Shared-memory bytes force-released with reason=crash."""
        return sum(int(e.get("nbytes", 0)) for e in self.releases
                   if e.get("reason") == "crash")


def build_crash_cascades(events: list[dict[str, Any]]) -> list[CrashCascade]:
    """Group worker crashes and their recovery into per-root cascades.

    Only crashes without a ``worker_crash`` ancestor root a cascade;
    descendants (a respawned worker dying again) fold into their root's
    ``follow_on`` list along with their own recovery events.
    """
    by_seq = index_by_seq(events)
    kids = children_of(events)

    def _has_crash_ancestor(event: dict[str, Any]) -> bool:
        return any(e.get("kind") == "worker_crash"
                   for e in walk_to_root(event, by_seq)[1:])

    cascades: list[CrashCascade] = []
    for event in events:
        if event.get("kind") != "worker_crash":
            continue
        if _has_crash_ancestor(event):
            continue
        cascade = CrashCascade(crash=event)
        frontier = [event["seq"]]
        while frontier:
            seq = frontier.pop()
            for child in kids.get(seq, ()):
                kind = child.get("kind")
                if kind == "worker_respawn":
                    cascade.respawns.append(child)
                elif kind == "worker_degraded":
                    cascade.degraded.append(child)
                elif kind == "task_retry":
                    cascade.retries.append(child)
                elif kind == "task_quarantine":
                    cascade.quarantines.append(child)
                elif kind == "shm_release":
                    cascade.releases.append(child)
                elif kind == "worker_crash":
                    cascade.follow_on.append(child)
                else:
                    continue
                frontier.append(child["seq"])
        cascades.append(cascade)
    return cascades


def format_crash_cascades(cascades: list[CrashCascade]) -> str:
    """Render the worker-crash recovery section of `repro explain`."""
    out: list[str] = [f"{len(cascades)} worker-crash cascade(s)"]
    for i, cascade in enumerate(cascades, 1):
        crash = cascade.crash
        out.append("")
        exitcode = crash.get("exitcode")
        detail = f", exitcode {exitcode}" if exitcode is not None else ""
        inflight = crash.get("inflight", 0)
        out.append(f"crash #{i}: worker {cascade.worker} lost "
                   f"({cascade.reason}{detail}) with {inflight} payload(s) "
                   f"in flight [seq {crash.get('seq')}]")
        tasks = crash.get("tasks")
        if tasks:
            out.append(f"  in flight: {', '.join(tasks)}")
        for follow in cascade.follow_on:
            out.append(f"  follow-on crash: worker {follow.get('worker')} "
                       f"lost again ({follow.get('reason', 'unknown')}) "
                       f"[seq {follow.get('seq')}]")
        for respawn in cascade.respawns:
            out.append(f"  respawn: worker {respawn.get('worker')} "
                       f"incarnation {respawn.get('incarnation')} "
                       f"({respawn.get('respawns')} used)")
        for deg in cascade.degraded:
            out.append(f"  degraded: worker {deg.get('worker')} fell back "
                       f"to coordinator-inline execution "
                       f"({deg.get('reason')})")
        if cascade.retries:
            names = {e.get("task") for e in cascade.retries}
            out.append(f"  retried: {len(cascade.retries)} re-dispatch(es) "
                       f"across {len(names)} task(s)")
        for q in cascade.quarantines:
            out.append(f"  quarantined: {q.get('task')} after "
                       f"{q.get('attempts')} attempt(s)")
        if cascade.crash_freed_bytes or any(
                e.get("reason") == "crash" for e in cascade.releases):
            out.append(f"  shm released (crash): "
                       f"{cascade.crash_freed_bytes} B force-freed")
    return "\n".join(out)


def _describe_root(cascade: RollbackCascade) -> list[str]:
    lines: list[str] = []
    if not cascade.root_chain:
        lines.append("root cause: (none recorded — rollback without a "
                     "failed check, e.g. a half-born version at finalize)")
        return lines
    trigger = cascade.root_chain[0]
    if trigger.get("kind") == "check_fail":
        err = trigger.get("error")
        tol = trigger.get("tolerance")
        what = (f"error {err:.4g}" if err is not None else "failed check")
        if tol is not None:
            what += f" > tolerance {tol:.4g}"
        where = "final check" if trigger.get("final") else (
            f"check @u{trigger.get('index')}")
        lines.append(f"root cause: {where} on v{trigger.get('version')} "
                     f"({what}) [seq {trigger.get('seq')}]")
    else:
        lines.append(f"root cause: {trigger.get('kind')} "
                     f"[seq {trigger.get('seq')}]")
    if len(cascade.root_chain) > 1:
        chain = " → ".join(
            f"{e.get('kind')}(seq {e.get('seq')})"
            for e in reversed(cascade.root_chain))
        lines.append(f"lineage: {chain} → destroy_signal"
                     f"(seq {cascade.destroy.get('seq')})")
    return lines


def format_cascades(cascades: list[RollbackCascade],
                    run_id: str | None = None) -> str:
    """Render cascades as the `repro explain` report."""
    out: list[str] = []
    header = f"run {run_id} — " if run_id else ""
    out.append(f"{header}{len(cascades)} rollback cascade(s)")
    for i, cascade in enumerate(cascades, 1):
        out.append("")
        t = cascade.destroy.get("t")
        stamp = f" at t={t:.0f} µs" if isinstance(t, (int, float)) else ""
        out.append(f"cascade #{i}: version {cascade.version} "
                   f"rolled back{stamp}")
        for line in _describe_root(cascade):
            out.append(f"  {line}")
        out.append(f"  destroyed: {cascade.tasks_destroyed} task(s), "
                   f"{cascade.buffer_discarded} buffered entr(ies), "
                   f"{cascade.wasted_us / 1e6:.4f} wasted task-seconds")
        if cascade.releases:
            out.append(f"  shm released (rollback): {cascade.freed_refs} "
                       f"ref(s), {cascade.freed_bytes} B")
        if cascade.aborts:
            out.append("  destroyed-task tree:")
            for abort in cascade.aborts:
                extras = []
                if abort.get("while_running"):
                    extras.append("reaped while running")
                if abort.get("after_done"):
                    extras.append("undone after completion")
                if abort.get("ran_us") is not None:
                    extras.append(f"{abort['ran_us']:.0f} µs sunk")
                note = f" ({', '.join(extras)})" if extras else ""
                out.append(f"    ├─ {abort.get('task')}{note}")
        for rebuild in cascade.rebuilds:
            out.append(f"  rebuild: {rebuild.get('kind')} "
                       f"v{rebuild.get('version')}"
                       + (" (reused candidate)" if rebuild.get("reused")
                          else ""))
    if cascades:
        total_tasks = sum(c.tasks_destroyed for c in cascades)
        total_bytes = sum(c.freed_bytes for c in cascades)
        total_wasted = sum(c.wasted_us for c in cascades) / 1e6
        out.append("")
        out.append(f"totals: {total_tasks} tasks destroyed · "
                   f"{total_bytes} B shm freed · "
                   f"{total_wasted:.4f} wasted task-seconds")
    return "\n".join(out)


def format_steals(events: list[dict[str, Any]]) -> str | None:
    """Render the work-stealing section of `repro explain`.

    One line per victim seat: how many claimed payloads idle seats drained
    from its deque (``task_steal`` events), and which seats took them —
    the dispatch layer's account of *where* a straggler slowed the run.
    Returns None when the run saw no steals.
    """
    steals = [e for e in events if e.get("kind") == "task_steal"]
    if not steals:
        return None
    by_victim: dict[Any, list[dict[str, Any]]] = {}
    for e in steals:
        by_victim.setdefault(e.get("from_worker"), []).append(e)
    out = [f"{len(steals)} payload(s) stolen from straggling seat(s)"]
    for victim, taken in sorted(by_victim.items(), key=lambda kv: str(kv[0])):
        thieves = sorted({e.get("worker") for e in taken})
        out.append(f"  seat {victim}: {len(taken)} payload(s) drained by "
                   f"seat(s) {thieves}")
    return "\n".join(out)


def explain_events(events: list[dict[str, Any]],
                   version: int | None = None) -> str:
    """Build and render the cascade report for an in-memory event list.

    Rollback cascades first, then — when the run saw physical failure —
    the worker-crash recovery section, then the work-stealing summary
    when idle seats drained a straggler's deque.
    """
    run_id = events[0].get("run_id") if events else None
    report = format_cascades(build_cascades(events, version), run_id)
    crashes = build_crash_cascades(events)
    if crashes:
        report += "\n\n" + format_crash_cascades(crashes)
    steals = format_steals(events)
    if steals:
        report += "\n\n" + steals
    return report


def explain_path(path: str, version: int | None = None) -> str:
    """Build and render the cascade report for an ``*.events.jsonl`` file.

    Degrades gracefully on header-less (pre-schema) logs — cascades need
    no header — but rejects logs stamped with a *different* schema
    version with a clear :class:`~repro.errors.EventSchemaError`.
    """
    _header, events = read_event_log(path, require_header=False)
    return explain_events(events, version)

"""Post-mortem reconstruction of rollback cascades from the event log.

``repro explain run.events.jsonl`` walks the flight recorder's ``cause``
edges backwards and forwards around each ``destroy_signal``:

* **backwards** to the root cause — the ``check_fail`` that pulled the
  trigger, and above it the ``spec_launch`` / ``spec_predict`` that
  created the doomed version;
* **forwards** over the fan-out — every ``task_abort`` (including ones
  reaped later on the process back-end, whose cause was stamped when the
  destroy signal flagged them), ``buffer_discard`` and ``shm_release``
  the signal caused;
* **sideways** to the rebuild — the re-speculation ``spec_launch`` that
  shares the failed check as its cause.

The totals printed here are double-entered elsewhere (``rollback_done``
events carry the :class:`~repro.core.rollback.RollbackEngine` counters;
``shm_release`` byte sums match ``shm_bytes_released{reason=rollback}``),
so the cascade tree can be trusted against the metrics surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import children_of, index_by_seq, load_events_jsonl, walk_to_root

__all__ = ["RollbackCascade", "build_cascades", "format_cascades",
           "explain_events", "explain_path"]


@dataclass
class RollbackCascade:
    """One destroy signal and everything it caused."""

    destroy: dict[str, Any]
    #: cause chain from the destroy signal up to its root (oldest last).
    root_chain: list[dict[str, Any]] = field(default_factory=list)
    aborts: list[dict[str, Any]] = field(default_factory=list)
    discards: list[dict[str, Any]] = field(default_factory=list)
    releases: list[dict[str, Any]] = field(default_factory=list)
    #: the re-speculation launched off this cascade's failed check.
    rebuilds: list[dict[str, Any]] = field(default_factory=list)
    #: engine totals from the paired rollback_done event.
    tasks_destroyed: int = 0
    buffer_discarded: int = 0
    wasted_us: float = 0.0

    @property
    def version(self) -> int | None:
        return self.destroy.get("version")

    @property
    def freed_bytes(self) -> int:
        """Shared-memory bytes released with reason=rollback."""
        return sum(int(e.get("nbytes", 0)) for e in self.releases
                   if e.get("reason") == "rollback")

    @property
    def freed_refs(self) -> int:
        return sum(int(e.get("refs", 0)) for e in self.releases
                   if e.get("reason") == "rollback")


def build_cascades(
    events: list[dict[str, Any]], version: int | None = None
) -> list[RollbackCascade]:
    """Group the event list into per-destroy-signal cascades.

    ``version`` filters to one speculation version's rollback(s).
    """
    by_seq = index_by_seq(events)
    kids = children_of(events)
    cascades: list[RollbackCascade] = []
    for event in events:
        if event.get("kind") != "destroy_signal":
            continue
        if version is not None and event.get("version") != version:
            continue
        cascade = RollbackCascade(destroy=event)
        cascade.root_chain = walk_to_root(event, by_seq)[1:]
        for child in kids.get(event["seq"], ()):
            kind = child.get("kind")
            if kind == "task_abort":
                cascade.aborts.append(child)
            elif kind == "buffer_discard":
                cascade.discards.append(child)
            elif kind == "shm_release":
                cascade.releases.append(child)
            elif kind == "rollback_done":
                cascade.tasks_destroyed = int(child.get("tasks_destroyed", 0))
                cascade.buffer_discarded = int(child.get("buffer_discarded", 0))
                cascade.wasted_us = float(child.get("wasted_us", 0.0))
        # The rebuild hangs off the *check_fail* (shared cause with the
        # destroy signal), not off the destroy signal itself.
        trigger = cascade.destroy.get("cause")
        if trigger is not None:
            cascade.rebuilds = [
                c for c in kids.get(trigger, ())
                if c.get("kind") in ("spec_launch", "spec_predict")
            ]
        cascades.append(cascade)
    return cascades


def _describe_root(cascade: RollbackCascade) -> list[str]:
    lines: list[str] = []
    if not cascade.root_chain:
        lines.append("root cause: (none recorded — rollback without a "
                     "failed check, e.g. a half-born version at finalize)")
        return lines
    trigger = cascade.root_chain[0]
    if trigger.get("kind") == "check_fail":
        err = trigger.get("error")
        tol = trigger.get("tolerance")
        what = (f"error {err:.4g}" if err is not None else "failed check")
        if tol is not None:
            what += f" > tolerance {tol:.4g}"
        where = "final check" if trigger.get("final") else (
            f"check @u{trigger.get('index')}")
        lines.append(f"root cause: {where} on v{trigger.get('version')} "
                     f"({what}) [seq {trigger.get('seq')}]")
    else:
        lines.append(f"root cause: {trigger.get('kind')} "
                     f"[seq {trigger.get('seq')}]")
    if len(cascade.root_chain) > 1:
        chain = " → ".join(
            f"{e.get('kind')}(seq {e.get('seq')})"
            for e in reversed(cascade.root_chain))
        lines.append(f"lineage: {chain} → destroy_signal"
                     f"(seq {cascade.destroy.get('seq')})")
    return lines


def format_cascades(cascades: list[RollbackCascade],
                    run_id: str | None = None) -> str:
    """Render cascades as the `repro explain` report."""
    out: list[str] = []
    header = f"run {run_id} — " if run_id else ""
    out.append(f"{header}{len(cascades)} rollback cascade(s)")
    for i, cascade in enumerate(cascades, 1):
        out.append("")
        t = cascade.destroy.get("t")
        stamp = f" at t={t:.0f} µs" if isinstance(t, (int, float)) else ""
        out.append(f"cascade #{i}: version {cascade.version} "
                   f"rolled back{stamp}")
        for line in _describe_root(cascade):
            out.append(f"  {line}")
        out.append(f"  destroyed: {cascade.tasks_destroyed} task(s), "
                   f"{cascade.buffer_discarded} buffered entr(ies), "
                   f"{cascade.wasted_us / 1e6:.4f} wasted task-seconds")
        if cascade.releases:
            out.append(f"  shm released (rollback): {cascade.freed_refs} "
                       f"ref(s), {cascade.freed_bytes} B")
        if cascade.aborts:
            out.append("  destroyed-task tree:")
            for abort in cascade.aborts:
                extras = []
                if abort.get("while_running"):
                    extras.append("reaped while running")
                if abort.get("after_done"):
                    extras.append("undone after completion")
                if abort.get("ran_us") is not None:
                    extras.append(f"{abort['ran_us']:.0f} µs sunk")
                note = f" ({', '.join(extras)})" if extras else ""
                out.append(f"    ├─ {abort.get('task')}{note}")
        for rebuild in cascade.rebuilds:
            out.append(f"  rebuild: {rebuild.get('kind')} "
                       f"v{rebuild.get('version')}"
                       + (" (reused candidate)" if rebuild.get("reused")
                          else ""))
    if cascades:
        total_tasks = sum(c.tasks_destroyed for c in cascades)
        total_bytes = sum(c.freed_bytes for c in cascades)
        total_wasted = sum(c.wasted_us for c in cascades) / 1e6
        out.append("")
        out.append(f"totals: {total_tasks} tasks destroyed · "
                   f"{total_bytes} B shm freed · "
                   f"{total_wasted:.4f} wasted task-seconds")
    return "\n".join(out)


def explain_events(events: list[dict[str, Any]],
                   version: int | None = None) -> str:
    """Build and render the cascade report for an in-memory event list."""
    run_id = events[0].get("run_id") if events else None
    return format_cascades(build_cascades(events, version), run_id)


def explain_path(path: str, version: int | None = None) -> str:
    """Build and render the cascade report for an ``*.events.jsonl`` file."""
    return explain_events(load_events_jsonl(path), version)

"""Observability: always-on metrics, snapshots and exporters.

This package is the runtime's accounting surface. The simulator already had
a rich :class:`~repro.sim.trace.TraceRecorder`; ``obs`` complements it with
*cheap, always-on* counters, gauges and histograms that work identically
under the simulated clock and the live (threads / process-pool) executors,
and that can be aggregated across process boundaries.

Three pieces:

* :mod:`repro.obs.metrics` — the instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram`) and the named
  :class:`MetricsRegistry` that owns them. Writes are per-thread sharded so
  the hot path takes no lock; reads fold the shards.
* :mod:`repro.obs.exporters` — Prometheus text exposition and JSON
  snapshot rendering, plus :class:`PeriodicSnapshotWriter` for long runs.
* pure snapshot algebra — :func:`merge_snapshots` merges two registry
  snapshots (associative and commutative), which is how worker-process
  metrics fold into the coordinator's registry.
* :mod:`repro.obs.events` — the flight recorder: an :class:`EventLog`
  ring of structured events with causal IDs, so speculation lineage
  (``spec_launch → check_fail → destroy_signal → task_abort*``) is a
  walkable graph (docs/flight-recorder.md).
* :mod:`repro.obs.explain` / :mod:`repro.obs.top` — post-mortem rollback
  cascade reconstruction (`repro explain`) and the live text dashboard
  (`repro top`; with ``--serve`` it polls a live daemon's ``stats`` op).
* :mod:`repro.obs.anomaly` — threshold detectors (mis-speculation burst,
  ready-queue stall, payload-budget pressure, breaker flap, ...) feeding
  ``RunReport.warnings``.
* :mod:`repro.obs.spans` — distributed tracing for the serve path:
  W3C-style ``traceparent`` propagation, a :class:`Tracer` whose spans
  double-enter into the flight recorder and stage-latency histograms,
  and span-tree assembly/rendering (docs/tracing.md).

Quickstart::

    from repro.obs import MetricsRegistry, to_prometheus_text

    reg = MetricsRegistry("demo")
    hits = reg.counter("cache_hits", "cache hits", labelnames=("tier",))
    hits.labels(tier="l1").inc()
    lat = reg.histogram("lookup_us", "lookup latency (µs)")
    lat.observe(12.5)
    print(to_prometheus_text(reg.snapshot()))

Every run started through :func:`repro.experiments.runner.run_huffman`
carries a registry on ``report.metrics``; ``repro run --metrics-out`` and
``repro stats`` expose it from the command line.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
)
from repro.obs.exporters import (
    PeriodicSnapshotWriter,
    load_json_snapshot,
    to_json_snapshot,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    EVENTS_SCHEMA_VERSION,
    EventLog,
    children_of,
    index_by_seq,
    load_events_jsonl,
    read_event_log,
    walk_to_root,
)
from repro.obs.anomaly import Anomaly, AnomalyThresholds, detect_anomalies, scan_run
from repro.obs.explain import build_cascades, explain_events, explain_path
from repro.obs.spans import (
    Span,
    TraceContext,
    Tracer,
    format_traceparent,
    parse_traceparent,
    render_span_tree,
    span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "merge_snapshots",
    "DEFAULT_LATENCY_BUCKETS_US",
    "PeriodicSnapshotWriter",
    "load_json_snapshot",
    "to_json_snapshot",
    "to_prometheus_text",
    "write_metrics",
    "EVENTS_SCHEMA",
    "EVENTS_SCHEMA_VERSION",
    "EventLog",
    "children_of",
    "index_by_seq",
    "load_events_jsonl",
    "read_event_log",
    "walk_to_root",
    "Anomaly",
    "AnomalyThresholds",
    "detect_anomalies",
    "scan_run",
    "build_cascades",
    "explain_events",
    "explain_path",
    "Span",
    "TraceContext",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
    "render_span_tree",
    "span_tree",
]

"""``repro top`` — a live text dashboard over metrics snapshot files.

Tails the JSON file a :class:`~repro.obs.exporters.PeriodicSnapshotWriter`
keeps fresh during a run (``repro run --metrics-out run.metrics.json
--metrics-interval 1``) and renders one compact frame per refresh:
throughput, ready-queue depths, speculation hit rate, in-flight tasks and
shared-memory residency. Plain text with ANSI clear — works in any
terminal, no curses dependency; ``--once`` prints a single frame and
exits (CI smoke / scripting).

Throughput is a *delta* between successive polls of the file; the first
frame (and ``--once``) shows totals only.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.errors import ObservabilityError

__all__ = ["sample_snapshot", "derive_stats", "render_frame", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def sample_snapshot(path: str) -> dict[str, Any] | None:
    """Load one snapshot file; None while the file is missing/partial.

    The writer publishes atomically (tmp + rename), but the run may not
    have flushed its first snapshot yet — tolerate both.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _series(doc: dict[str, Any], name: str) -> list[dict[str, Any]]:
    for metric in doc.get("metrics", ()):
        if metric.get("name") == name:
            return metric.get("series", [])
    return []


def _value(doc: dict[str, Any], name: str, **labels: str) -> float:
    want = dict(labels)
    for s in _series(doc, name):
        if {k: str(v) for k, v in s.get("labels", {}).items()} == want:
            return float(s.get("value", 0.0))
    return 0.0


def _total(doc: dict[str, Any], name: str) -> float:
    return sum(float(s.get("value", 0.0)) for s in _series(doc, name))


def derive_stats(doc: dict[str, Any]) -> dict[str, Any]:
    """Pull the dashboard quantities out of one snapshot document."""
    checks_pass = _value(doc, "spec_checks", verdict="pass")
    checks_fail = _value(doc, "spec_checks", verdict="fail")
    checks = checks_pass + checks_fail
    return {
        "blocks_committed": _total(doc, "blocks_committed"),
        "tasks_completed": _total(doc, "sre_tasks_completed"),
        "ready_natural": _value(doc, "sre_ready_depth", queue="natural"),
        "ready_spec": _value(doc, "sre_ready_depth", queue="speculative"),
        "inflight": _total(doc, "exec_inflight"),
        "workers": _total(doc, "exec_workers"),
        "spec_hit_rate": (checks_pass / checks) if checks else None,
        "checks_pass": checks_pass,
        "checks_fail": checks_fail,
        "rollbacks": _total(doc, "spec_rollbacks"),
        "commits": _total(doc, "spec_commits"),
        "shm_resident": _total(doc, "shm_bytes_resident"),
        "shm_segments": _total(doc, "shm_segments"),
        "payload_bytes": _total(doc, "procs_payload_bytes"),
    }


def render_frame(
    doc: dict[str, Any],
    prev: dict[str, Any] | None = None,
    dt_s: float | None = None,
    *,
    path: str = "",
) -> str:
    """One dashboard frame as plain text."""
    stats = derive_stats(doc)
    meta = doc.get("meta") or {}
    label = " ".join(
        str(meta[k]) for k in ("workload", "executor", "transport")
        if k in meta and meta[k] is not None)
    lines = [f"repro top — {path or 'snapshot'}"
             + (f"  [{label}]" if label else "")]
    if prev is not None and dt_s:
        prev_stats = derive_stats(prev)
        blocks_s = (stats["blocks_committed"]
                    - prev_stats["blocks_committed"]) / dt_s
        tasks_s = (stats["tasks_completed"]
                   - prev_stats["tasks_completed"]) / dt_s
        lines.append(f"throughput   {blocks_s:8.1f} blocks/s   "
                     f"{tasks_s:8.1f} tasks/s")
    else:
        lines.append(f"totals       {stats['blocks_committed']:8.0f} blocks "
                     f"committed   {stats['tasks_completed']:8.0f} tasks done")
    hit = stats["spec_hit_rate"]
    hit_text = (f"{hit:6.1%} ({stats['checks_pass']:.0f}/"
                f"{stats['checks_pass'] + stats['checks_fail']:.0f})"
                if hit is not None else "   n/a")
    lines.append(f"spec hit     {hit_text}   commits {stats['commits']:.0f} "
                 f"rollbacks {stats['rollbacks']:.0f}")
    lines.append(f"ready depth  nat {stats['ready_natural']:.0f} / "
                 f"spec {stats['ready_spec']:.0f}   "
                 f"inflight {stats['inflight']:.0f}/{stats['workers']:.0f}")
    lines.append(f"shm resident {stats['shm_resident'] / 1024:.0f} KiB "
                 f"({stats['shm_segments']:.0f} segment(s))   "
                 f"payload sent {stats['payload_bytes'] / 1024:.0f} KiB")
    return "\n".join(lines)


def run_top(path: str, *, once: bool = False, interval_s: float = 1.0,
            max_frames: int | None = None) -> int:
    """Dashboard loop. Returns a process exit code.

    ``once`` prints a single frame (waiting briefly for the file to
    appear); otherwise refreshes until interrupted or, with
    ``max_frames``, for a bounded number of frames (tests).
    """
    if once:
        deadline = time.monotonic() + 5.0
        doc = sample_snapshot(path)
        while doc is None and time.monotonic() < deadline:
            time.sleep(0.1)
            doc = sample_snapshot(path)
        if doc is None:
            raise ObservabilityError(f"no readable snapshot at {path!r}")
        print(render_frame(doc, path=path))
        return 0
    prev: dict[str, Any] | None = None
    prev_t = 0.0
    frames = 0
    try:
        while max_frames is None or frames < max_frames:
            doc = sample_snapshot(path)
            now = time.monotonic()
            if doc is not None:
                frame = render_frame(doc, prev, now - prev_t if prev else None,
                                     path=path)
                print(_CLEAR + frame, flush=True)
                prev, prev_t = doc, now
                frames += 1
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0

"""``repro top`` — a live text dashboard over metrics snapshot files.

Tails the JSON file a :class:`~repro.obs.exporters.PeriodicSnapshotWriter`
keeps fresh during a run (``repro run --metrics-out run.metrics.json
--metrics-interval 1``) and renders one compact frame per refresh:
throughput, ready-queue depths, speculation hit rate, in-flight tasks and
shared-memory residency. Plain text with ANSI clear — works in any
terminal, no curses dependency; ``--once`` prints a single frame and
exits (CI smoke / scripting).

Throughput is a *delta* between successive polls of the file; the first
frame (and ``--once``) shows totals only.

Two sources, one dashboard:

* **file mode** (:func:`run_top`) tails a snapshot file; when the
  snapshot carries ``serve_*`` series (a daemon's ``--metrics-out``),
  per-tenant job counts and stage-latency percentiles render too;
* **serve mode** (:func:`run_top_serve`, ``repro top --serve``) polls a
  live daemon's ``stats`` op — job table, per-tenant rates and breaker
  states, lane-pool occupancy, stage p50/p95 and anomaly warnings.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.metrics import histogram_quantile

__all__ = [
    "sample_snapshot",
    "derive_stats",
    "derive_serve_stats",
    "render_frame",
    "render_serve_frame",
    "run_top",
    "run_top_serve",
]

_CLEAR = "\x1b[2J\x1b[H"


def sample_snapshot(path: str) -> dict[str, Any] | None:
    """Load one snapshot file; None while the file is missing/partial.

    The writer publishes atomically (tmp + rename), but the run may not
    have flushed its first snapshot yet — tolerate both.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _series(doc: dict[str, Any], name: str) -> list[dict[str, Any]]:
    for metric in doc.get("metrics", ()):
        if metric.get("name") == name:
            return metric.get("series", [])
    return []


def _value(doc: dict[str, Any], name: str, **labels: str) -> float:
    want = dict(labels)
    for s in _series(doc, name):
        if {k: str(v) for k, v in s.get("labels", {}).items()} == want:
            return float(s.get("value", 0.0))
    return 0.0


def _total(doc: dict[str, Any], name: str) -> float:
    return sum(float(s.get("value", 0.0)) for s in _series(doc, name))


def derive_serve_stats(doc: dict[str, Any]) -> dict[str, Any] | None:
    """The ``serve_*`` slice of a snapshot; None when the document has no
    serve series at all (a plain one-shot run's snapshot).

    ``tenants`` maps tenant -> submitted/done/failed/rejected totals;
    ``stages`` maps ``(tenant, stage)`` -> p50/p95/count derived from the
    ``serve_job_stage_us`` histogram via :func:`histogram_quantile`.
    """
    names = {m.get("name") for m in doc.get("metrics", ())}
    if not any(str(n).startswith("serve_") for n in names):
        return None
    tenants: dict[str, dict[str, float]] = {}

    def bump(tenant: str, key: str, value: float) -> None:
        row = tenants.setdefault(tenant, {"submitted": 0.0, "done": 0.0,
                                          "failed": 0.0, "rejected": 0.0})
        row[key] += value

    for s in _series(doc, "serve_jobs_submitted"):
        bump(str(s.get("labels", {}).get("tenant", "?")), "submitted",
             float(s.get("value", 0.0)))
    for s in _series(doc, "serve_jobs_finished"):
        labels = s.get("labels", {})
        bump(str(labels.get("tenant", "?")),
             "done" if labels.get("state") == "done" else "failed",
             float(s.get("value", 0.0)))
    for s in _series(doc, "serve_jobs_rejected"):
        bump(str(s.get("labels", {}).get("tenant", "?")), "rejected",
             float(s.get("value", 0.0)))
    stages: dict[tuple[str, str], dict[str, float | None]] = {}
    for s in _series(doc, "serve_job_stage_us"):
        labels = s.get("labels", {})
        bounds, counts = s.get("bounds"), s.get("counts")
        if not bounds or not counts:
            continue
        stages[(str(labels.get("tenant", "?")),
                str(labels.get("stage", "?")))] = {
            "p50": histogram_quantile(bounds, counts, 0.5),
            "p95": histogram_quantile(bounds, counts, 0.95),
            "count": float(s.get("count", 0.0)),
        }
    return {"tenants": tenants, "stages": stages,
            "breaker_opens": _total(doc, "serve_breaker_opens")}


def derive_stats(doc: dict[str, Any]) -> dict[str, Any]:
    """Pull the dashboard quantities out of one snapshot document.

    Snapshots from a serve daemon additionally carry a ``"serve"`` key
    (see :func:`derive_serve_stats`) so the dashboard shows tenant/stage
    rows instead of silently rendering all-zero run counters.
    """
    checks_pass = _value(doc, "spec_checks", verdict="pass")
    checks_fail = _value(doc, "spec_checks", verdict="fail")
    checks = checks_pass + checks_fail
    serve = derive_serve_stats(doc)
    extra = {"serve": serve} if serve is not None else {}
    return {
        **extra,
        "blocks_committed": _total(doc, "blocks_committed"),
        "tasks_completed": _total(doc, "sre_tasks_completed"),
        "ready_natural": _value(doc, "sre_ready_depth", queue="natural"),
        "ready_spec": _value(doc, "sre_ready_depth", queue="speculative"),
        "inflight": _total(doc, "exec_inflight"),
        "workers": _total(doc, "exec_workers"),
        "spec_hit_rate": (checks_pass / checks) if checks else None,
        "checks_pass": checks_pass,
        "checks_fail": checks_fail,
        "rollbacks": _total(doc, "spec_rollbacks"),
        "commits": _total(doc, "spec_commits"),
        "shm_resident": _total(doc, "shm_bytes_resident"),
        "shm_segments": _total(doc, "shm_segments"),
        "payload_bytes": _total(doc, "procs_payload_bytes"),
    }


def render_frame(
    doc: dict[str, Any],
    prev: dict[str, Any] | None = None,
    dt_s: float | None = None,
    *,
    path: str = "",
) -> str:
    """One dashboard frame as plain text."""
    stats = derive_stats(doc)
    meta = doc.get("meta") or {}
    label = " ".join(
        str(meta[k]) for k in ("workload", "executor", "transport")
        if k in meta and meta[k] is not None)
    lines = [f"repro top — {path or 'snapshot'}"
             + (f"  [{label}]" if label else "")]
    if prev is not None and dt_s:
        prev_stats = derive_stats(prev)
        blocks_s = (stats["blocks_committed"]
                    - prev_stats["blocks_committed"]) / dt_s
        tasks_s = (stats["tasks_completed"]
                   - prev_stats["tasks_completed"]) / dt_s
        lines.append(f"throughput   {blocks_s:8.1f} blocks/s   "
                     f"{tasks_s:8.1f} tasks/s")
    else:
        lines.append(f"totals       {stats['blocks_committed']:8.0f} blocks "
                     f"committed   {stats['tasks_completed']:8.0f} tasks done")
    hit = stats["spec_hit_rate"]
    hit_text = (f"{hit:6.1%} ({stats['checks_pass']:.0f}/"
                f"{stats['checks_pass'] + stats['checks_fail']:.0f})"
                if hit is not None else "   n/a")
    lines.append(f"spec hit     {hit_text}   commits {stats['commits']:.0f} "
                 f"rollbacks {stats['rollbacks']:.0f}")
    lines.append(f"ready depth  nat {stats['ready_natural']:.0f} / "
                 f"spec {stats['ready_spec']:.0f}   "
                 f"inflight {stats['inflight']:.0f}/{stats['workers']:.0f}")
    lines.append(f"shm resident {stats['shm_resident'] / 1024:.0f} KiB "
                 f"({stats['shm_segments']:.0f} segment(s))   "
                 f"payload sent {stats['payload_bytes'] / 1024:.0f} KiB")
    if stats.get("serve"):
        lines.extend(_serve_lines(stats["serve"]))
    return "\n".join(lines)


def _fmt_us(value: float | None) -> str:
    """Human µs: '87 µs', '12.3 ms', '1.84 s'."""
    if value is None:
        return "n/a"
    if value < 1_000:
        return f"{value:.0f} µs"
    if value < 1_000_000:
        return f"{value / 1_000:.1f} ms"
    return f"{value / 1_000_000:.2f} s"


def _serve_lines(serve: dict[str, Any]) -> list[str]:
    lines = []
    for tenant, row in sorted(serve["tenants"].items()):
        lines.append(f"serve [{tenant}]  submitted {row['submitted']:.0f}  "
                     f"done {row['done']:.0f}  failed {row['failed']:.0f}  "
                     f"rejected {row['rejected']:.0f}")
    for (tenant, stage), pct in sorted(serve["stages"].items()):
        if pct["p50"] is None:
            continue
        lines.append(f"  {tenant}/{stage:<10} p50 {_fmt_us(pct['p50']):>9}"
                     f"  p95 {_fmt_us(pct['p95']):>9}  n {pct['count']:.0f}")
    if serve.get("breaker_opens"):
        lines.append(f"serve breaker opens {serve['breaker_opens']:.0f}")
    return lines


def render_serve_frame(
    stats: dict[str, Any],
    prev: dict[str, Any] | None = None,
    dt_s: float | None = None,
    *,
    target: str = "",
) -> str:
    """One live-daemon dashboard frame from a ``stats`` op reply."""
    lines = [f"repro top — serve {target or 'daemon'}"
             f"  up {float(stats.get('uptime_s', 0.0)):.0f}s"]
    jobs = stats.get("jobs") or {}
    jobs_text = "  ".join(f"{state} {count}"
                          for state, count in sorted(jobs.items()))
    lines.append(f"jobs         {jobs_text or 'none yet'}")
    doc = stats.get("metrics") or {}
    serve = derive_serve_stats(doc) or {"tenants": {}, "stages": {},
                                        "breaker_opens": 0.0}
    prev_serve = derive_serve_stats((prev or {}).get("metrics") or {}) \
        if prev is not None else None
    admission = (stats.get("admission") or {}).get("tenants", {})
    for tenant, row in sorted(serve["tenants"].items()):
        line = (f"tenant {tenant:<12} done {row['done']:.0f}  "
                f"failed {row['failed']:.0f}  "
                f"rejected {row['rejected']:.0f}")
        if prev_serve is not None and dt_s:
            before = prev_serve["tenants"].get(tenant, {})
            rate = (row["done"] - before.get("done", 0.0)) / dt_s
            line += f"  rate {rate:5.2f} jobs/s"
        breaker = admission.get(tenant, {}).get("breaker")
        if breaker:
            line += f"  breaker {breaker}"
        lines.append(line)
    lanes = stats.get("lanes") or []
    busy = sum(1 for lane in lanes if lane.get("in_use"))
    lane_text = "  ".join(
        f"[{lane.get('tenant')}:{lane.get('workers')}w"
        f"{'*' if lane.get('in_use') else ''} "
        f"{lane.get('jobs_served', 0)}j]" for lane in lanes)
    lines.append(f"lanes        {busy}/{len(lanes)} in use"
                 + (f"   {lane_text}" if lane_text else ""))
    store = stats.get("store") or {}
    lines.append(f"store        refs {store.get('live_refs', 0)}  "
                 f"segments {store.get('live_segments', 0)}")
    for (tenant, stage), pct in sorted(serve["stages"].items()):
        if pct["p50"] is None:
            continue
        lines.append(f"stage {tenant}/{stage:<10} "
                     f"p50 {_fmt_us(pct['p50']):>9}  "
                     f"p95 {_fmt_us(pct['p95']):>9}  n {pct['count']:.0f}")
    for warning in stats.get("warnings") or []:
        lines.append(f"!! {warning}")
    return "\n".join(lines)


def run_top_serve(host: str, port: int, *, once: bool = False,
                  interval_s: float = 1.0,
                  max_frames: int | None = None) -> int:
    """Live-daemon dashboard loop: poll the ``stats`` op, render frames.

    Same contract as :func:`run_top` — ``once`` prints a single frame,
    ``max_frames`` bounds the loop for tests — but the source is a
    daemon connection, so frames never go stale between polls.
    """
    from repro.client import ServeClient  # here to keep import cost off

    target = f"{host}:{port}"
    with ServeClient(host, port=port) as client:
        if once:
            print(render_serve_frame(client.stats(), target=target))
            return 0
        prev: dict[str, Any] | None = None
        prev_t = 0.0
        frames = 0
        try:
            while max_frames is None or frames < max_frames:
                stats = client.stats()
                now = time.monotonic()
                frame = render_serve_frame(
                    stats, prev, now - prev_t if prev else None,
                    target=target)
                print(_CLEAR + frame, flush=True)
                prev, prev_t = stats, now
                frames += 1
                if max_frames is not None and frames >= max_frames:
                    break
                time.sleep(interval_s)
        except KeyboardInterrupt:
            pass
    return 0


def run_top(path: str, *, once: bool = False, interval_s: float = 1.0,
            max_frames: int | None = None) -> int:
    """Dashboard loop. Returns a process exit code.

    ``once`` prints a single frame (waiting briefly for the file to
    appear); otherwise refreshes until interrupted or, with
    ``max_frames``, for a bounded number of frames (tests).
    """
    if once:
        deadline = time.monotonic() + 5.0
        doc = sample_snapshot(path)
        while doc is None and time.monotonic() < deadline:
            time.sleep(0.1)
            doc = sample_snapshot(path)
        if doc is None:
            raise ObservabilityError(f"no readable snapshot at {path!r}")
        print(render_frame(doc, path=path))
        return 0
    prev: dict[str, Any] | None = None
    prev_t = 0.0
    frames = 0
    try:
        while max_frames is None or frames < max_frames:
            doc = sample_snapshot(path)
            now = time.monotonic()
            if doc is not None:
                frame = render_frame(doc, prev, now - prev_t if prev else None,
                                     path=path)
                print(_CLEAR + frame, flush=True)
                prev, prev_t = doc, now
                frames += 1
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0

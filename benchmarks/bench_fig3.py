"""Bench: regenerate Figure 3 (dispatch policies, x86 / disk).

Prints latency curves for TXT/BMP/PDF under non-spec / balanced /
aggressive / conservative plus the run-times panel (Fig. 3d), and asserts
the paper's qualitative findings hold on this build.
"""

from repro.experiments import fig3


def test_fig3_policy_sweep_x86(figure_bench):
    result = figure_bench(fig3)
    # Paper findings (§V-B): speculation wins on TXT; aggressive suffers
    # most from rollbacks; conservative stays close to non-spec with
    # rollbacks (PDF).
    txt = {p: r for (panel, p), r in result.reports.items() if panel.startswith("txt")}
    pdf = {p: r for (panel, p), r in result.reports.items() if panel.startswith("pdf")}
    assert txt["balanced"].avg_latency < txt["nonspec"].avg_latency
    assert txt["aggressive"].avg_latency < txt["nonspec"].avg_latency
    assert pdf["aggressive"].avg_latency > pdf["conservative"].avg_latency

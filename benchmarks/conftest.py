"""Shared helpers for the benchmark harness.

Every figure of the paper has one bench that regenerates it at the active
scale (quarter scale by default; ``REPRO_SCALE=paper`` for full size) and
prints the same rows/series the paper plots. pytest-benchmark measures one
round — these are experiment regenerations, not microbenchmarks; the micro
suite (bench_micro.py) uses normal multi-round timing.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """benchmark.pedantic with a single round, returning fn's result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def figure_bench(benchmark, capsys):
    """Run a figure module's run(), render it to stdout, stash key numbers."""

    def go(module, **kwargs):
        result = run_once(benchmark, module.run, **kwargs)
        with capsys.disabled():
            print()
            print(result.render(charts=True))
        benchmark.extra_info["figure"] = result.figure
        for note in result.notes:
            benchmark.extra_info.setdefault("notes", []).append(note)
        return result

    return go

"""Bench: the headline-claims table (paper vs measured).

The paper has no numbered tables; its quantitative claims (abstract, §V,
§VII) are regenerated here as a table. Every claim must at least *hold in
direction and rough magnitude* on the simulated substrate.
"""

from repro.experiments import claims


def test_headline_claims(benchmark, capsys):
    results = benchmark.pedantic(claims.run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(claims.render(results))
    for claim in results:
        benchmark.extra_info[claim.claim] = claim.measured
        assert claim.holds, f"claim failed: {claim.claim} ({claim.measured})"

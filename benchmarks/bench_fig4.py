"""Bench: regenerate Figure 4 (dispatch policies, Cell / disk).

Same sweep as Fig. 3 on the Cell model; asserts the Cell-specific finding
that conservative dispatch performs poorly (multiple buffering starves
speculation).
"""

from repro.experiments import fig4


def test_fig4_policy_sweep_cell(figure_bench):
    result = figure_bench(fig4)
    txt = {p: r for (panel, p), r in result.reports.items() if panel.startswith("txt")}
    # conservative is the worst speculative policy on Cell ...
    assert txt["conservative"].avg_latency > txt["balanced"].avg_latency
    assert txt["conservative"].avg_latency > txt["aggressive"].avg_latency
    # ... while speculation still beats non-spec under balanced/aggressive
    assert txt["aggressive"].avg_latency < txt["nonspec"].avg_latency

"""Bench: regenerate Figure 6 (verification frequency policies).

Asserts: checks are cheap (optimistic vs full differ little without
rollbacks); optimism is catastrophic when the guess is wrong (PDF).
"""

from repro.experiments import fig6


def test_fig6_verification_sweep(figure_bench):
    result = figure_bench(fig6)
    txt = {m: r for (panel, m), r in result.reports.items() if panel.startswith("txt")}
    pdf = {m: r for (panel, m), r in result.reports.items() if panel.startswith("pdf")}
    # low check overhead: full vs optimistic within 10% on TXT
    assert abs(txt["full"].avg_latency - txt["optimistic"].avg_latency) \
        < 0.10 * txt["optimistic"].avg_latency
    # optimistic pays dearly on PDF (single final check, full restart)
    assert pdf["optimistic"].avg_latency > pdf["balanced"].avg_latency
    assert pdf["optimistic"].result.outcome == "recompute"

"""Bench: regenerate Figure 5 (average latency vs speculation step size).

Asserts the paper's step-size findings: TXT prefers the earliest possible
speculation; BMP/PDF show a rollback-free threshold beyond which average
latency drops well below non-spec.
"""

import numpy as np

from repro.experiments import fig5


def test_fig5_step_size_sweep(figure_bench):
    result = figure_bench(fig5)

    def series(wl):
        return result.series[f"{wl} avg latency vs step"]

    txt = series("txt")
    # TXT: latency rises as speculation starts later (first vs last step).
    assert txt["balanced"][0] < txt["balanced"][-1]
    # BMP/PDF: the best step beats non-spec noticeably; the worst step does
    # not (it is within ~15% of non-spec: rollback territory).
    for wl in ("bmp", "pdf"):
        s = series(wl)
        nonspec = s["nonspec"][0]
        assert s["balanced"].min() < 0.85 * nonspec
        assert s["balanced"].max() > 0.8 * nonspec

"""Bench: regenerate Figure 9 (tolerance margins 1% / 2% / 5%).

Asserts the counter-intuitive ordering on PDF: 2% (late detection) is the
worst, 5% (no rollbacks) the best, with a slightly worse compression ratio
for the committed early tree; TXT is tolerance-insensitive.
"""

from repro.experiments import fig9


def test_fig9_tolerance_margins(figure_bench):
    result = figure_bench(fig9)
    pdf = {t: r for (panel, t), r in result.reports.items()
           if panel.startswith("pdf")}
    assert pdf["5%"].avg_latency < pdf["1%"].avg_latency < pdf["2%"].avg_latency
    assert pdf["5%"].result.spec_stats["rollbacks"] == 0
    assert pdf["1%"].result.spec_stats["rollbacks"] >= 1
    assert pdf["5%"].result.compression_ratio < pdf["1%"].result.compression_ratio
    txt = {t: r for (panel, t), r in result.reports.items()
           if panel.startswith("txt")}
    assert txt["1%"].avg_latency == txt["2%"].avg_latency == txt["5%"].avg_latency

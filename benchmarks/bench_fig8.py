"""Bench: regenerate Figure 8 (CPU scaling under slow I/O).

Asserts latency drops monotonically from 2 to 8 CPUs.
"""

from repro.experiments import fig8


def test_fig8_cpu_scaling(figure_bench):
    result = figure_bench(fig8)
    panel = next(iter(result.series))
    lat = {n: result.reports[(panel, f"{n} cpu")].avg_latency for n in (2, 4, 8)}
    assert lat[2] > lat[4] >= lat[8]

"""Microbenchmarks of the computational kernels and the DES engine.

These use conventional multi-round pytest-benchmark timing (unlike the
figure regenerations) and guard against performance regressions in the hot
paths: histogramming, tree build, vectorised encode, decode, and the
simulator's event loop.

Run directly (``python benchmarks/bench_micro.py --executor {sim,threads,
procs,all}``) it benchmarks the executor back-ends on a pure-Python
histogram workload instead, printing the threads-vs-procs speedup table
(see :mod:`repro.experiments.executor_bench`). On a multi-core host the
process pool beats the GIL-bound thread pool roughly by the core count;
on a single core both degenerate to serial.

``python benchmarks/bench_micro.py --transport-table`` prints the
pickle-vs-shm payload-byte comparison instead (see
:mod:`repro.experiments.transport_bench` and docs/transport.md).
"""

import numpy as np
import pytest

from repro.huffman.codec import decode_stream, encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree
from repro.sim.kernel import Simulator
from repro.workloads import get_workload

BLOCK = 4096


@pytest.fixture(scope="module")
def text_block():
    return get_workload("txt").generate(BLOCK, seed=1)


@pytest.fixture(scope="module")
def text_mb():
    return get_workload("txt").generate(1024 * 1024, seed=1)


def test_micro_histogram_block(benchmark, text_block):
    hist = benchmark(byte_histogram, text_block)
    assert hist.sum() == BLOCK


def test_micro_tree_build(benchmark, text_mb):
    hist = byte_histogram(text_mb)
    tree = benchmark(HuffmanTree.from_histogram, hist)
    assert tree.max_length < 64


def test_micro_encode_block(benchmark, text_block):
    tree = HuffmanTree.from_histogram(byte_histogram(text_block))
    packed, nbits = benchmark(encode_block, text_block, tree)
    assert nbits > 0


def test_micro_encode_megabyte(benchmark, text_mb):
    tree = HuffmanTree.from_histogram(byte_histogram(text_mb))
    _, nbits = benchmark(encode_block, text_mb, tree)
    # sanity: compresses text
    assert nbits < len(text_mb) * 8


def test_micro_decode_block(benchmark, text_block):
    tree = HuffmanTree.from_histogram(byte_histogram(text_block))
    packed, nbits = encode_block(text_block, tree)
    out = benchmark(decode_stream, packed, nbits, tree)
    assert out == text_block


def test_micro_simulator_event_throughput(benchmark):
    def churn():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(churn) == 10_000


def test_micro_workload_generation(benchmark):
    wl = get_workload("pdf")
    data = benchmark(wl.generate, 256 * 1024, 0)
    assert len(data) == 256 * 1024


if __name__ == "__main__":
    import sys

    if "--transport-table" in sys.argv:
        from repro.experiments.transport_bench import (
            render_table,
            run_transport_bench,
        )

        print(render_table(run_transport_bench()))
        sys.exit(0)

    from repro.experiments.executor_bench import main

    sys.exit(main())

"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation flips one runtime design decision and measures the cost on a
representative workload, quantifying the paper's qualitative scheduling
arguments (§III-A) on our model.
"""

from repro.experiments.runner import RunConfig, run_huffman
from repro.platforms import CellPlatform


def _txt(policy="balanced", **kw):
    return run_huffman(config=RunConfig(workload="txt", n_blocks=256,
                                     policy=policy, step=1, seed=0, **kw))


def test_ablation_depth_first_vs_fcfs(benchmark, capsys):
    """Depth-favouring dispatch vs pure FCFS (the paper: FCFS is
    breadth-first, 'toxic to memory locality' and latency)."""

    def run():
        depth = _txt()
        fcfs = _txt(policy="fcfs", depth_first=False)
        return depth, fcfs

    depth, fcfs = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\ndepth-first avg latency: {depth.avg_latency:,.0f} µs | "
              f"fcfs: {fcfs.avg_latency:,.0f} µs "
              f"(+{fcfs.avg_latency / depth.avg_latency - 1:.1%})")
    benchmark.extra_info["depth_first_us"] = depth.avg_latency
    benchmark.extra_info["fcfs_us"] = fcfs.avg_latency
    assert fcfs.avg_latency > depth.avg_latency


def test_ablation_control_priority(benchmark, capsys):
    """Predict/verify tasks at highest priority vs ordinary depth priority.

    Without the boost, speculative trees and checks queue behind encodes,
    delaying both speculation start and rollback detection."""

    def run():
        boosted = _txt()
        plain = _txt(control_first=False)
        return boosted, plain

    boosted, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\ncontrol-first avg latency: {boosted.avg_latency:,.0f} µs | "
              f"no boost: {plain.avg_latency:,.0f} µs")
    benchmark.extra_info["control_first_us"] = boosted.avg_latency
    benchmark.extra_info["no_boost_us"] = plain.avg_latency
    assert boosted.avg_latency <= plain.avg_latency * 1.02


def test_ablation_cell_prefetch_depth(benchmark, capsys):
    """Cell multiple-buffering depth: the technique exists to overlay
    communication with computation (§III-A). Without prefetch (one slot),
    every task's DMA serialises after the previous task's compute; with
    four slots, transfers hide behind the current task and both average
    latency and total runtime improve."""

    def run():
        out = {}
        for slots in (1, 4):
            plat = CellPlatform(slots=slots)
            out[slots] = run_huffman(config=RunConfig(
                workload="txt", n_blocks=256, platform=plat,
                policy="conservative", step=1, seed=0,
            ))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\ndepth-1: avg {out[1].avg_latency:,.0f} µs, "
              f"runtime {out[1].completion_time:,.0f} µs | "
              f"depth-4: avg {out[4].avg_latency:,.0f} µs, "
              f"runtime {out[4].completion_time:,.0f} µs")
    benchmark.extra_info["depth1_avg_us"] = out[1].avg_latency
    benchmark.extra_info["depth4_avg_us"] = out[4].avg_latency
    assert out[4].avg_latency < out[1].avg_latency
    assert out[4].completion_time < out[1].completion_time


def test_ablation_tolerance_vs_exact(benchmark, capsys):
    """Tolerant vs exact value speculation: with zero tolerance, even the
    statistically stationary TXT workload fails its checks (prefix trees are
    never bit-identical) and speculation degenerates to the recompute path —
    the paper's core argument for tolerance."""

    def run():
        tolerant = _txt()
        exact = _txt(tolerance=0.0)
        return tolerant, exact

    tolerant, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\ntolerant (1%): outcome={tolerant.result.outcome}, "
              f"avg {tolerant.avg_latency:,.0f} µs | "
              f"exact (0%): outcome={exact.result.outcome}, "
              f"avg {exact.avg_latency:,.0f} µs")
    benchmark.extra_info["tolerant_us"] = tolerant.avg_latency
    benchmark.extra_info["exact_us"] = exact.avg_latency
    assert tolerant.result.outcome == "commit"
    assert exact.result.outcome == "recompute" or \
        exact.result.spec_stats["rollbacks"] > 0
    assert tolerant.avg_latency < exact.avg_latency


def test_ablation_wait_buffer_commit_latency(benchmark, capsys):
    """Cost of the side-effect barrier: commit latency (results become
    externally visible) vs encode latency (processing complete). The gap is
    the price of buffering speculative output until validation."""

    def run():
        return _txt()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    encode_avg = float(report.result.latencies.mean())
    commit_avg = float(report.result.commit_latencies.mean())
    with capsys.disabled():
        print(f"\nencode latency {encode_avg:,.0f} µs | "
              f"commit latency {commit_avg:,.0f} µs "
              f"(barrier holds results {commit_avg - encode_avg:,.0f} µs on avg)")
    benchmark.extra_info["encode_us"] = encode_avg
    benchmark.extra_info["commit_us"] = commit_avg
    assert commit_avg >= encode_avg


def test_ablation_adaptive_tolerance(benchmark, capsys):
    """Extension beyond the paper: a margin that starts lenient and
    tightens per check, against Fig. 9's fixed margins on PDF. Detection
    happens where the decaying margin crosses the workload's error curve,
    so the adaptive rule lands between the fixed margins it spans — the
    bench records where, for the calibrated PDF drift."""
    from repro.core.tolerance import AdaptiveTolerance
    from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
    from repro.platforms import X86Platform
    from repro.sre.executor_sim import SimulatedExecutor
    from repro.sre.runtime import Runtime
    from repro.workloads import get_workload

    def run_one(tolerance_rule=None, tolerance=0.01):
        data = get_workload("pdf").generate(512 * 4096, seed=0)
        blocks = [data[i:i + 4096] for i in range(0, len(data), 4096)]
        config = HuffmanConfig(step=1, tolerance=tolerance)
        rt = Runtime()
        ex = SimulatedExecutor(rt, X86Platform(), policy="balanced")
        pipe = HuffmanPipeline(rt, config, len(blocks))
        if tolerance_rule is not None:
            pipe.manager.spec.tolerance = tolerance_rule
        for i, b in enumerate(blocks):
            ex.sim.schedule_at(10.0 + 8.0 * i,
                               lambda i=i, b=b: pipe.feed_block(i, b))
        end = ex.run()
        result = pipe.result(end)
        assert pipe.verify_roundtrip(data)
        return result

    def run_all():
        return {
            "fixed 1%": run_one(tolerance=0.01),
            "fixed 2%": run_one(tolerance=0.02),
            "adaptive 5%→0.5%": run_one(
                AdaptiveTolerance(initial=0.05, floor=0.005, decay=0.6)),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for label, r in results.items():
            print(f"{label:18s}: avg {r.avg_latency:8,.0f} µs, "
                  f"rollbacks {r.spec_stats.get('rollbacks', 0)}, "
                  f"outcome {r.outcome}")
    adaptive = results["adaptive 5%→0.5%"]
    assert adaptive.outcome in ("commit", "recompute")
    benchmark.extra_info["adaptive_us"] = adaptive.avg_latency
    benchmark.extra_info["fixed1_us"] = results["fixed 1%"].avg_latency

"""Bench: regenerate Figure 7 (socket I/O: arrival time and latency).

Asserts: with speculation and no rollback (TXT) latency is negligible
relative to transfer time; the PDF run shows rollback effects but still
far below transfer time once recovered.
"""

from repro.experiments import fig7


def test_fig7_socket_streams(figure_bench):
    result = figure_bench(fig7)
    txt = result.reports[("txt over socket", "run")]
    assert txt.avg_latency < 0.05 * txt.arrivals[-1]
    pdf = result.reports[("pdf over socket", "run")]
    assert pdf.result.spec_stats.get("rollbacks", 0) >= 0  # shape recorded
    assert pdf.avg_latency < pdf.arrivals[-1]

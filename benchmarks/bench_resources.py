"""Bench: §II-B resource-management knobs (ratio & throttle sweeps).

The paper lists these options without evaluating them; this bench fills in
the design space on the reproduction substrate.
"""

from repro.experiments import resources


def test_resource_knob_sweeps(figure_bench):
    result = figure_bench(resources)
    txt_ratio = [result.reports[("txt ratio", f"{s}")].avg_latency
                 for s in resources.RATIO_STEPS]
    # on rollback-free TXT, more speculation never hurts: latency is
    # non-increasing in the speculative dispatch share (small tolerance)
    assert txt_ratio[-1] <= txt_ratio[0] * 1.02
    caps = list(resources.THROTTLE_STEPS)
    txt_throttle = [result.reports[("txt throttle", f"{c}")].avg_latency
                    for c in caps]
    # strangling speculation costs latency monotonically
    for tight, loose in zip(txt_throttle, txt_throttle[1:]):
        assert loose <= tight * 1.02
